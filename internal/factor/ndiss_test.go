package factor

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/sparse"
)

// ndTestMatrices are the patterns the ND property tests run over: regular
// grids, a shuffled grid (no exploitable labelling), an irregular saddle
// pattern and a 3-D stencil.
func ndTestMatrices() map[string]*sparse.CSR {
	return map[string]*sparse.CSR{
		"poisson-32x32":    sparse.Poisson2D(32, 32, 0.05).A,
		"shuffled-24x24":   shuffledGrid(24, 24, 5),
		"saddle-20x20":     sparse.SaddlePoisson2D(20, 20, 1e-2).A,
		"poisson3d-9x9x9":  sparse.Poisson3D(9, 9, 9, 0.05).A,
		"tridiag-300":      sparse.Tridiagonal(300, 2.1, -1).A,
		"random-spd-400":   sparse.RandomSPD(400, 0.02, 3).A,
		"randgrid-21x21":   sparse.RandomGridSPD(21, 21, 8).A,
		"poisson-1x200":    sparse.Poisson2D(1, 200, 0.05).A,
		"poisson-128x128":  sparse.Poisson2D(128, 128, 0.05).A,
		"two-paths-disc-6": twoPathsDisconnected(),
	}
}

func twoPathsDisconnected() *sparse.CSR {
	coo := sparse.NewCOO(300, 300)
	for i := 0; i < 300; i++ {
		coo.Add(i, i, 2)
	}
	for i := 0; i < 149; i++ {
		coo.AddSym(i, i+1, -1)
	}
	for i := 150; i < 299; i++ {
		coo.AddSym(i, i+1, -1)
	}
	return coo.ToCSR()
}

// TestNDIsValidPermutation checks ND returns a permutation of 0..n-1 on every
// test pattern, including disconnected and path graphs.
func TestNDIsValidPermutation(t *testing.T) {
	for name, a := range ndTestMatrices() {
		t.Run(name, func(t *testing.T) {
			p := ND(a)
			if len(p) != a.Rows() {
				t.Fatalf("ND returned %d indices for %d vertices", len(p), a.Rows())
			}
			if err := p.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNDDeterministic pins run-over-run identity of the ordering.
func TestNDDeterministic(t *testing.T) {
	for name, a := range ndTestMatrices() {
		t.Run(name, func(t *testing.T) {
			p1, p2 := ND(a), ND(a)
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("ND is not deterministic at %d: %d vs %d", i, p1[i], p2[i])
				}
			}
		})
	}
}

// TestNDTopSplitBalance asserts the separator balance bound of the first
// bisection on grids: each half keeps at least ndBalanceMin of the
// non-separator vertices, and the separator stays within a small multiple of
// the grid's √n cross-section.
func TestNDTopSplitBalance(t *testing.T) {
	for _, side := range []int{48, 64, 128} {
		a := sparse.Poisson2D(side, side, 0.05).A
		na, nb, ns, ok := ndTopSplit(a)
		if !ok {
			t.Fatalf("side %d: top split did not run (disconnected/shallow?)", side)
		}
		if na+nb+ns != a.Rows() {
			t.Fatalf("side %d: split %d/%d/%d does not cover n=%d", side, na, nb, ns, a.Rows())
		}
		minSide := math.Min(float64(na), float64(nb))
		if minSide < ndBalanceMin*float64(na+nb) {
			t.Errorf("side %d: split %d/%d breaks the %.0f%% balance bound", side, na, nb, 100*ndBalanceMin)
		}
		if ns > 3*side {
			t.Errorf("side %d: separator has %d vertices, want O(side)=O(%d)", side, ns, side)
		}
	}
}

// TestNDFillAndFlopsBelowRCMOnGrids is the acceptance criterion of the
// nested-dissection PR: on the 64² grid ND must not fill more than RCM, and
// on the 128² (16384-unknown) grid ND must cut both nnz(L) and the factor
// flops to at most half of RCM's while scheduling more than one independent
// subtree task (RCM's path-like etree schedules none).
func TestNDFillAndFlopsBelowRCMOnGrids(t *testing.T) {
	saved := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(saved)
	runtime.GOMAXPROCS(4)
	for _, side := range []int{64, 128} {
		sys := sparse.Poisson2D(side, side, 0.05)
		rcm, err := NewSupernodal(sys.A, OrderRCM, ModeCholesky)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := NewSupernodal(sys.A, OrderND, ModeCholesky)
		if err != nil {
			t.Fatal(err)
		}
		if x := nd.Solve(sys.B); sys.A.Residual(x, sys.B).Norm2()/sys.B.Norm2() > 1e-10 {
			t.Fatalf("side %d: ND-ordered solve lost accuracy", side)
		}
		bound := 1.0
		if side >= 128 {
			bound = 0.5
		}
		if f := float64(nd.NNZL()) / float64(rcm.NNZL()); f > bound {
			t.Errorf("side %d: nnz(L) nd/rcm = %.3f, want ≤ %.2f (nd %d, rcm %d)", side, f, bound, nd.NNZL(), rcm.NNZL())
		}
		if f := nd.Flops() / rcm.Flops(); f > bound {
			t.Errorf("side %d: flops nd/rcm = %.3f, want ≤ %.2f (nd %.3g, rcm %.3g)", side, f, bound, nd.Flops(), rcm.Flops())
		}
		if side >= 128 {
			ndTasks, _ := nd.Parallelism()
			rcmTasks, _ := rcm.Parallelism()
			if ndTasks <= 1 {
				t.Errorf("side %d: ND scheduled %d subtree tasks, want > 1", side, ndTasks)
			}
			if rcmTasks > 1 {
				t.Logf("side %d: RCM unexpectedly scheduled %d tasks", side, rcmTasks)
			}
			t.Logf("side %d: nnz(L) nd/rcm %.2f, flops nd/rcm %.2f, tasks nd %d rcm %d",
				side, float64(nd.NNZL())/float64(rcm.NNZL()), nd.Flops()/rcm.Flops(), ndTasks, rcmTasks)
		}
	}
}

// TestAnalyzeSupernodalMatchesFactorisation pins the symbolic-only analysis
// (what E6's ordering comparison runs) to the real factorisation: identical
// nnz(L), flop estimate, supernode count and resolved ordering, and a
// full-pool task count on the bushy ND tree where the 1-worker numeric run
// stays sequential.
func TestAnalyzeSupernodalMatchesFactorisation(t *testing.T) {
	sys := sparse.Poisson2D(64, 64, 0.05)
	for _, ord := range []Ordering{OrderRCM, OrderND} {
		an, err := AnalyzeSupernodal(sys.A, ord)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSupernodal(sys.A, ord, ModeCholesky)
		if err != nil {
			t.Fatal(err)
		}
		if an.NNZL != s.NNZL() || an.Flops != s.Flops() || an.Supernodes != s.Supernodes() || an.Ordering != s.Ordering() {
			t.Errorf("%v: analysis (nnzL %d, flops %g, ns %d, %v) differs from factorisation (nnzL %d, flops %g, ns %d, %v)",
				ord, an.NNZL, an.Flops, an.Supernodes, an.Ordering, s.NNZL(), s.Flops(), s.Supernodes(), s.Ordering())
		}
	}
	// Task counts need enough total work to clear the scheduler's parallel
	// floor: the 64² ND factor (≈4.5 Mflop) rightly stays sequential, the
	// 96² one is past the 8 Mflop threshold and must cut a bushy task set.
	big := sparse.Poisson2D(96, 96, 0.05)
	nd, _ := AnalyzeSupernodal(big.A, OrderND)
	rcm, _ := AnalyzeSupernodal(big.A, OrderRCM)
	if nd.Tasks <= 1 {
		t.Errorf("ND analysis cut %d tasks on a 96x96 grid, want > 1 for the full pool", nd.Tasks)
	}
	if rcm.Tasks > nd.Tasks {
		t.Errorf("RCM analysis cut more tasks (%d) than ND (%d)", rcm.Tasks, nd.Tasks)
	}
	if _, err := AnalyzeSupernodal(sparse.NewCOO(2, 3).ToCSR(), OrderND); err == nil {
		t.Error("non-square analysis did not fail")
	}
}

// TestNDScalarAgreement runs the scalar backends under OrderND against the
// supernodal factorisation — the cross-backend 1e-10 agreement the ISSUE
// names (the big ordering sweeps in supernodal_test.go cover OrderND too;
// this pins a grid large enough for a real dissection tree).
func TestNDScalarAgreement(t *testing.T) {
	sys := sparse.Poisson2D(40, 40, 0.05)
	scalar, err := NewCholesky(sys.A, OrderND)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := NewSupernodal(sys.A, OrderND, ModeCholesky)
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Ordering() != OrderND || sn.Ordering() != OrderND {
		t.Fatalf("orderings resolved to %v / %v, want nd", scalar.Ordering(), sn.Ordering())
	}
	xs, xn := scalar.Solve(sys.B), sn.Solve(sys.B)
	if d := xs.Sub(xn).Norm2() / xs.Norm2(); d > 1e-10 {
		t.Errorf("supernodal deviates from scalar by %g under OrderND", d)
	}
	// The scalar factor under ND must also beat its RCM fill at this size.
	rcm, err := NewCholesky(sys.A, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	if nd, r := scalar.NNZL(), rcm.NNZL(); nd > r {
		t.Errorf("scalar nnz(L) under ND (%d) exceeds RCM (%d) on a 40x40 grid", nd, r)
	}
}
