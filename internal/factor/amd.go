package factor

import (
	"repro/internal/sparse"
)

// AMD computes an approximate-minimum-degree ordering of the symmetric
// sparsity pattern of a, in the style of Amestoy, Davis and Duff: vertices are
// eliminated greedily by (approximate) external degree on a quotient graph
// whose eliminated vertices become elements, with the |Le \ Lp| bound standing
// in for the exact degree and with elements absorbed as soon as their
// boundary is swallowed by a newer element. The returned permutation follows
// the package convention perm[new] = old.
//
// The ordering is deterministic: the pending-vertex heap breaks degree ties
// towards the smaller vertex index, and every adjacency sweep runs in index
// order. Supervariable (indistinguishable-node) detection is deliberately
// omitted — it changes constants, not the fill quality the tests pin — which
// keeps the implementation small enough to audit.
func AMD(a *sparse.CSR) Perm {
	n := a.Rows()
	perm := make(Perm, 0, n)

	// Variable adjacency (off-diagonal, pruned in place as the elimination
	// proceeds) and per-variable element lists. Element e is the vertex whose
	// elimination created it; bound[e] is its boundary Le.
	adj := make([][]int32, n)
	elems := make([][]int32, n)
	bound := make([][]int32, n)
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		cols, _ := a.RowView(i)
		row := make([]int32, 0, len(cols))
		for _, j := range cols {
			if j != i {
				row = append(row, int32(j))
			}
		}
		adj[i] = row
		deg[i] = len(row)
	}

	var (
		eliminated = make([]bool, n)
		deadElem   = make([]bool, n)
		mark       = make([]int, n) // Lp membership, stamped per elimination
		wseen      = make([]int, n) // |Le \ Lp| computation stamp
		w          = make([]int, n) // |Le \ Lp| per alive element
		lp         = make([]int32, 0, n)
	)
	for i := range mark {
		mark[i], wseen[i] = -1, -1
	}

	// Min-heap of deg<<32|vertex with lazy deletion: a popped entry whose
	// degree no longer matches deg[v] is stale and skipped. The packed key
	// makes ties break towards the smaller vertex index for free.
	heap := newDegHeap(n)
	for v := 0; v < n; v++ {
		heap.push(deg[v], v)
	}

	for k := 0; k < n; k++ {
		p := -1
		for {
			d, v, ok := heap.pop()
			if !ok {
				break
			}
			if eliminated[v] || d != deg[v] {
				continue
			}
			p = v
			break
		}
		if p == -1 {
			break // unreachable for a well-formed heap; defensive
		}

		// Form Lp = (Ap ∪ ⋃_{e∈Ep} Le) \ {p}: the uneliminated vertices the
		// new element p is adjacent to.
		lp = lp[:0]
		mark[p] = k
		for _, j := range adj[p] {
			if v := int(j); !eliminated[v] && mark[v] != k {
				mark[v] = k
				lp = append(lp, j)
			}
		}
		for _, e := range elems[p] {
			if deadElem[e] {
				continue
			}
			for _, j := range bound[e] {
				if v := int(j); v != p && mark[v] != k {
					mark[v] = k
					lp = append(lp, j)
				}
			}
			deadElem[e] = true // absorbed into p
			bound[e] = nil
		}
		sortInt32(lp)
		bound[p] = append([]int32(nil), lp...)
		eliminated[p] = true
		elems[p], adj[p] = nil, nil
		perm = append(perm, p)

		// First pass: w[e] = |Le \ Lp| for every alive element adjacent to Lp
		// (initialise to |Le| on first sight, then subtract one per boundary
		// member found inside Lp).
		for _, ji := range lp {
			for _, e := range elems[ji] {
				if deadElem[e] {
					continue
				}
				if wseen[e] != k {
					wseen[e] = k
					w[e] = len(bound[e])
				}
				w[e]--
			}
		}

		// Second pass: prune each i ∈ Lp and recompute its approximate degree
		//   d(i) ≈ |Ai \ Lp| + |Lp \ {i}| + Σ_{e ∈ Ei} |Le \ Lp|.
		remaining := n - k - 1
		for _, ji := range lp {
			i := int(ji)
			// Ai loses everything now reachable through element p.
			av := adj[i][:0]
			for _, j := range adj[i] {
				if v := int(j); !eliminated[v] && mark[v] != k {
					av = append(av, j)
				}
			}
			adj[i] = av
			// Ei drops dead (absorbed) elements and gains p. An element whose
			// boundary is entirely inside Lp (w == 0 ignoring i itself being
			// counted out below) is dominated by p and absorbed.
			ev := elems[i][:0]
			d := len(av) + len(lp) - 1
			for _, e := range elems[i] {
				if deadElem[e] {
					continue
				}
				if wseen[e] == k && w[e] <= 0 {
					deadElem[e] = true
					bound[e] = nil
					continue
				}
				ev = append(ev, e)
				if wseen[e] == k {
					d += w[e]
				} else {
					d += len(bound[e])
				}
			}
			elems[i] = append(ev, int32(p))
			if d > remaining-1 {
				d = remaining - 1
			}
			if d < 0 {
				d = 0
			}
			if d != deg[i] {
				deg[i] = d
				heap.push(d, i)
			}
		}
	}
	return perm
}

// degHeap is a binary min-heap over packed (degree, vertex) keys with lazy
// deletion; the low 32 bits carry the vertex so equal degrees order by index.
type degHeap struct{ keys []int64 }

func newDegHeap(capacity int) *degHeap {
	return &degHeap{keys: make([]int64, 0, capacity)}
}

func (h *degHeap) push(deg, v int) {
	h.keys = append(h.keys, int64(deg)<<32|int64(v))
	i := len(h.keys) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			break
		}
		h.keys[parent], h.keys[i] = h.keys[i], h.keys[parent]
		i = parent
	}
}

func (h *degHeap) pop() (deg, v int, ok bool) {
	if len(h.keys) == 0 {
		return 0, 0, false
	}
	top := h.keys[0]
	last := len(h.keys) - 1
	h.keys[0] = h.keys[last]
	h.keys = h.keys[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.keys[l] < h.keys[smallest] {
			smallest = l
		}
		if r < last && h.keys[r] < h.keys[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.keys[i], h.keys[smallest] = h.keys[smallest], h.keys[i]
		i = smallest
	}
	return int(top >> 32), int(top & 0xffffffff), true
}

// sortInt32 is an insertion/quick hybrid over the small boundary slices AMD
// sorts per elimination (avoiding a sort.Slice closure allocation per call).
func sortInt32(s []int32) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	pivot := s[len(s)/2]
	left, right := 0, len(s)-1
	for left <= right {
		for s[left] < pivot {
			left++
		}
		for s[right] > pivot {
			right--
		}
		if left <= right {
			s[left], s[right] = s[right], s[left]
			left++
			right--
		}
	}
	sortInt32(s[:right+1])
	sortInt32(s[left:])
}
