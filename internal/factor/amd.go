package factor

import (
	"repro/internal/sparse"
)

// AMD computes an approximate-minimum-degree ordering of the symmetric
// sparsity pattern of a, in the style of Amestoy, Davis and Duff: vertices are
// eliminated greedily by (approximate) external degree on a quotient graph
// whose eliminated vertices become elements, with the |Le \ Lp| bound standing
// in for the exact degree and with elements absorbed as soon as their
// boundary is swallowed by a newer element. The returned permutation follows
// the package convention perm[new] = old.
//
// Two constant-factor accelerations of the classic algorithm are applied:
//
//   - Supervariable detection: after each elimination, variables of the
//     pivot's boundary that have become indistinguishable (identical pruned
//     adjacency and element lists — found by hashing, then exact comparison)
//     merge into one supervariable. One representative does the graph work of
//     the whole group, and the group is emitted together when it is
//     eliminated, so the quotient graph shrinks far faster than one vertex
//     per step on meshes and saddle patterns full of twins.
//   - Mass elimination: a boundary variable whose entire remaining adjacency
//     is the pivot's boundary (empty pruned adjacency, the new element its
//     only element) is eliminated immediately with the pivot — it can add no
//     fill beyond the clique the pivot just formed.
//
// The ordering is deterministic: the pending-vertex heap breaks degree ties
// towards the smaller vertex index, every sweep runs in index order, and
// supervariables absorb towards the smallest member.
func AMD(a *sparse.CSR) Perm {
	p, _ := amdOrder(a)
	return p
}

// amdStats counts the work the supervariable machinery saved: variables
// absorbed into an indistinguishable principal and variables mass-eliminated
// alongside a pivot. The property tests assert both mechanisms engage on the
// patterns they exist for.
type amdStats struct {
	supervars int // variables absorbed into an indistinguishable twin
	massElim  int // variables eliminated for free alongside their pivot
}

func amdOrder(a *sparse.CSR) (Perm, amdStats) {
	var stats amdStats
	n := a.Rows()
	perm := make(Perm, 0, n)

	// Variable adjacency (off-diagonal, pruned in place as the elimination
	// proceeds), per-variable element lists, and supervariable sizes. Element
	// e is the vertex whose elimination created it; bound[e] is its boundary
	// Le and boundSize[e] the live supervariable mass of that boundary.
	adj := make([][]int32, n)
	elems := make([][]int32, n)
	bound := make([][]int32, n)
	boundSize := make([]int, n)
	deg := make([]int, n)
	nv := make([]int, n)
	sub := make([][]int32, n) // supervariables absorbed into this principal
	for i := 0; i < n; i++ {
		cols, _ := a.RowView(i)
		row := make([]int32, 0, len(cols))
		for _, j := range cols {
			if j != i {
				row = append(row, int32(j))
			}
		}
		adj[i] = row
		deg[i] = len(row)
		nv[i] = 1
	}

	var (
		eliminated = make([]bool, n)
		deadElem   = make([]bool, n)
		mark       = make([]int, n) // Lp membership, stamped per elimination
		wseen      = make([]int, n) // |Le \ Lp| computation stamp
		w          = make([]int, n) // |Le \ Lp| per alive element (size-weighted)
		hseen      = make([]int, n) // hash-bucket stamp
		hhead      = make([]int32, n)
		hnext      = make([]int32, n)
		lp         = make([]int32, 0, n)
		emitStack  = make([]int32, 0, 16)
	)
	for i := range mark {
		mark[i], wseen[i], hseen[i] = -1, -1, -1
	}

	// emit appends a principal variable and, transitively, every
	// supervariable it absorbed (each group in absorption order).
	emit := func(v int32) {
		emitStack = append(emitStack[:0], v)
		for len(emitStack) > 0 {
			u := emitStack[len(emitStack)-1]
			emitStack = emitStack[:len(emitStack)-1]
			perm = append(perm, int(u))
			// Push in reverse so absorbed members emit in absorption order.
			for t := len(sub[u]) - 1; t >= 0; t-- {
				emitStack = append(emitStack, sub[u][t])
			}
			sub[u] = nil
		}
	}

	// Min-heap of deg<<32|vertex with lazy deletion: a popped entry whose
	// degree no longer matches deg[v] is stale and skipped. The packed key
	// makes ties break towards the smaller vertex index for free.
	heap := newDegHeap(n)
	for v := 0; v < n; v++ {
		heap.push(deg[v], v)
	}

	step := 0
	for len(perm) < n {
		p := -1
		for {
			d, v, ok := heap.pop()
			if !ok {
				break
			}
			if eliminated[v] || d != deg[v] {
				continue
			}
			p = v
			break
		}
		if p == -1 {
			break // unreachable for a well-formed heap; defensive
		}
		step++

		// Form Lp = (Ap ∪ ⋃_{e∈Ep} Le) \ {p}: the uneliminated principal
		// variables the new element p is adjacent to, with their mass.
		lp = lp[:0]
		lpSize := 0
		mark[p] = step
		for _, j := range adj[p] {
			if v := int(j); !eliminated[v] && mark[v] != step {
				mark[v] = step
				lp = append(lp, j)
				lpSize += nv[v]
			}
		}
		for _, e := range elems[p] {
			if deadElem[e] {
				continue
			}
			for _, j := range bound[e] {
				if v := int(j); v != p && !eliminated[v] && mark[v] != step {
					mark[v] = step
					lp = append(lp, j)
					lpSize += nv[v]
				}
			}
			deadElem[e] = true // absorbed into p
			bound[e] = nil
		}
		sortInt32(lp)
		bound[p] = append([]int32(nil), lp...)
		boundSize[p] = lpSize
		eliminated[p] = true
		elems[p], adj[p] = nil, nil
		emit(int32(p))

		// First pass: w[e] = |Le \ Lp| (in supervariable mass) for every
		// alive element adjacent to Lp: initialise to boundSize[e] on first
		// sight, then subtract each boundary member found inside Lp.
		for _, ji := range lp {
			for _, e := range elems[ji] {
				if deadElem[e] {
					continue
				}
				if wseen[e] != step {
					wseen[e] = step
					w[e] = boundSize[e]
				}
				w[e] -= nv[ji]
			}
		}

		// Second pass: prune each i ∈ Lp and recompute its approximate degree
		//   d(i) ≈ |Ai \ Lp| + |Lp \ {i}| + Σ_{e ∈ Ei} |Le \ Lp|,
		// every term weighted by supervariable mass.
		for _, ji := range lp {
			i := int(ji)
			// Ai loses everything now reachable through element p.
			av := adj[i][:0]
			avSize := 0
			for _, j := range adj[i] {
				if v := int(j); !eliminated[v] && mark[v] != step {
					av = append(av, j)
					avSize += nv[v]
				}
			}
			adj[i] = av
			// Ei drops dead (absorbed) elements and gains p. An element whose
			// boundary is entirely inside Lp (w ≤ 0) is dominated by p and
			// absorbed.
			ev := elems[i][:0]
			d := avSize + lpSize - nv[i]
			for _, e := range elems[i] {
				if deadElem[e] {
					continue
				}
				if wseen[e] == step && w[e] <= 0 {
					deadElem[e] = true
					bound[e] = nil
					continue
				}
				ev = append(ev, e)
				if wseen[e] == step {
					d += w[e]
				} else {
					d += boundSize[e]
				}
			}
			elems[i] = append(ev, int32(p))
			deg[i] = d
		}

		// Mass elimination: a boundary variable with no remaining adjacency
		// and p as its only element is dominated by the new clique — it
		// eliminates now, for free. lp is sorted, so the group emits in
		// ascending index order.
		for _, ji := range lp {
			i := int(ji)
			if len(adj[i]) == 0 && len(elems[i]) == 1 {
				eliminated[i] = true
				boundSize[p] -= nv[i]
				elems[i] = nil
				stats.massElim += nv[i]
				emit(ji)
			}
		}

		// Supervariable detection among the surviving boundary: bucket by a
		// cheap hash of the pruned lists, then compare exactly. Equal lists
		// mean the variables are indistinguishable from here on, so the
		// larger index is absorbed into the smaller. (Both lists are pruned
		// to live entries in the same chronological order, so set equality is
		// plain elementwise equality.)
		for _, ji := range lp {
			i := int(ji)
			if eliminated[i] {
				continue
			}
			h := 0
			for _, j := range adj[i] {
				h += int(j)
			}
			for _, e := range elems[i] {
				h += int(e)
			}
			if h < 0 {
				h = -h
			}
			h %= n
			if hseen[h] != step {
				hseen[h] = step
				hhead[h] = -1
			}
			hnext[i] = hhead[h]
			hhead[h] = ji
			// Compare against the earlier bucket members (all larger lp
			// indices arrive later, so the chain holds smaller indices
			// further down; absorption goes towards the smallest).
			for cand := hnext[i]; cand != -1; cand = hnext[cand] {
				c := int(cand)
				if eliminated[c] || !int32SlicesEqual(adj[i], adj[c]) || !int32SlicesEqual(elems[i], elems[c]) {
					continue
				}
				// Indistinguishable: absorb the larger index into the
				// smaller. lp is sorted ascending, so cand < i here.
				m := nv[i]
				nv[c] += m
				sub[cand] = append(sub[cand], ji)
				stats.supervars++
				eliminated[i] = true
				adj[i], elems[i] = nil, nil
				// i leaves every boundary it was in, and cand gains exactly
				// its mass there (they share all elements), so boundary
				// sizes are unchanged. The principal's degree shrinks by the
				// absorbed mass (it no longer counts i as a neighbour).
				deg[c] -= m
				break
			}
		}

		// Re-queue the surviving boundary with their updated degrees, capped
		// by the remaining mass.
		remaining := n - len(perm)
		for _, ji := range lp {
			i := int(ji)
			if eliminated[i] {
				continue
			}
			d := deg[i]
			if limit := remaining - nv[i]; d > limit {
				d = limit
			}
			if d < 0 {
				d = 0
			}
			deg[i] = d
			heap.push(d, i)
		}
	}
	return perm, stats
}

// int32SlicesEqual reports elementwise equality.
func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// degHeap is a binary min-heap over packed (degree, vertex) keys with lazy
// deletion; the low 32 bits carry the vertex so equal degrees order by index.
type degHeap struct{ keys []int64 }

func newDegHeap(capacity int) *degHeap {
	return &degHeap{keys: make([]int64, 0, capacity)}
}

func (h *degHeap) push(deg, v int) {
	h.keys = append(h.keys, int64(deg)<<32|int64(v))
	i := len(h.keys) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			break
		}
		h.keys[parent], h.keys[i] = h.keys[i], h.keys[parent]
		i = parent
	}
}

func (h *degHeap) pop() (deg, v int, ok bool) {
	if len(h.keys) == 0 {
		return 0, 0, false
	}
	top := h.keys[0]
	last := len(h.keys) - 1
	h.keys[0] = h.keys[last]
	h.keys = h.keys[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.keys[l] < h.keys[smallest] {
			smallest = l
		}
		if r < last && h.keys[r] < h.keys[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.keys[i], h.keys[smallest] = h.keys[smallest], h.keys[i]
		i = smallest
	}
	return int(top >> 32), int(top & 0xffffffff), true
}

// sortInt32 is an insertion/quick hybrid over the small boundary slices AMD
// sorts per elimination (avoiding a sort.Slice closure allocation per call).
func sortInt32(s []int32) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	pivot := s[len(s)/2]
	left, right := 0, len(s)-1
	for left <= right {
		for s[left] < pivot {
			left++
		}
		for s[right] > pivot {
			right--
		}
		if left <= right {
			s[left], s[right] = s[right], s[left]
			left++
			right--
		}
	}
	sortInt32(s[:right+1])
	sortInt32(s[left:])
}
