package factor

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// randomQuasiDefinite builds a random symmetric quasi-definite (hence SNND-
// adjacent but indefinite) saddle system [[A, B], [Bᵀ, -C]] with A, C random
// SPD and B random sparse — the class of matrices the sparse LDLᵀ exists for.
func randomQuasiDefinite(nA, nC int, seed int64) sparse.System {
	rng := rand.New(rand.NewSource(seed))
	top := sparse.RandomSPD(nA, 0.05, seed)
	bottom := sparse.RandomSPD(nC, 0.2, seed+1)
	n := nA + nC
	coo := sparse.NewCOO(n, n)
	top.A.Each(func(i, j int, v float64) { coo.Add(i, j, v) })
	bottom.A.Each(func(i, j int, v float64) { coo.Add(nA+i, nA+j, -v) })
	for k := 0; k < nC; k++ {
		for i := 0; i < nA; i++ {
			if rng.Float64() < 3/float64(nA) {
				coo.AddSym(i, nA+k, rng.NormFloat64())
			}
		}
	}
	b := sparse.RandomVec(n, seed+2)
	return sparse.System{A: coo.ToCSR(), B: b, Name: "random-quasi-definite"}
}

// TestLDLTMatchesDenseLUOnSNND is the satellite agreement test: on random
// symmetric non-positive-definite systems the sparse LDLᵀ must agree with the
// dense partial-pivoting LU to 1e-10, under every ordering.
func TestLDLTMatchesDenseLUOnSNND(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sys := randomQuasiDefinite(120, 30, seed)
		exact, err := dense.SolveExact(sys.A, sys.B)
		if err != nil {
			t.Fatalf("seed %d: dense LU reference: %v", seed, err)
		}
		for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD, OrderND, OrderAuto} {
			s, err := NewLDLT(sys.A, ord)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, ord, err)
			}
			x := s.Solve(sys.B)
			if d := x.MaxAbsDiff(exact); d > 1e-10 {
				t.Errorf("seed %d %s: LDLT disagrees with dense LU by %g", seed, ord, d)
			}
		}
	}
}

// TestLDLTMatchesCholeskyOnSPD checks the definite case degenerates correctly:
// on SPD systems LDLᵀ (all-positive pivots) and the sparse Cholesky agree.
func TestLDLTMatchesCholeskyOnSPD(t *testing.T) {
	for _, sys := range []sparse.System{
		sparse.Poisson2D(17, 13, 0.05),
		sparse.RandomSPD(250, 0.03, 9),
	} {
		chol, err := NewCholesky(sys.A, OrderAuto)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		ldlt, err := NewLDLT(sys.A, OrderAuto)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		pos, neg, zero := ldlt.Inertia()
		if neg != 0 || zero != 0 || pos != sys.Dim() {
			t.Errorf("%s: SPD system has inertia (%d+, %d-, %d zero)", sys.Name, pos, neg, zero)
		}
		xc, xl := chol.Solve(sys.B), ldlt.Solve(sys.B)
		if d := xc.MaxAbsDiff(xl); d > 1e-10 {
			t.Errorf("%s: LDLT and Cholesky disagree by %g", sys.Name, d)
		}
	}
}

func TestLDLTInertiaOfSaddleSystem(t *testing.T) {
	nx, ny := 15, 12
	sys := sparse.SaddlePoisson2D(nx, ny, 1e-2)
	s, err := NewLDLT(sys.A, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg, zero := s.Inertia()
	if pos != nx*ny || neg != ny || zero != 0 {
		t.Errorf("saddle inertia = (%d+, %d-, %d zero), want (%d+, %d-, 0 zero)", pos, neg, zero, nx*ny, ny)
	}
}

func TestLDLTSolveToleratesAliasing(t *testing.T) {
	sys := sparse.SaddlePoisson2D(9, 9, 1e-2)
	s, err := NewLDLT(sys.A, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Solve(sys.B)
	x := sys.B.Clone()
	s.SolveTo(x, x)
	if d := x.MaxAbsDiff(want); d > 0 {
		t.Errorf("aliased solve differs by %g", d)
	}
}

func TestLDLTIsDeterministic(t *testing.T) {
	sys := randomQuasiDefinite(80, 20, 42)
	first, err := NewLDLT(sys.A, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	x0 := first.Solve(sys.B)
	for run := 0; run < 3; run++ {
		again, err := NewLDLT(sys.A, OrderAuto)
		if err != nil {
			t.Fatal(err)
		}
		if d := again.Solve(sys.B).MaxAbsDiff(x0); d > 0 {
			t.Errorf("run %d: solution differs by %g (must be byte-identical)", run, d)
		}
	}
}

func TestLDLTRejectsSingularAndNonSquare(t *testing.T) {
	// Exactly singular: a zero row/column.
	coo := sparse.NewCOO(3, 3)
	coo.Add(0, 0, 2)
	coo.AddSym(0, 1, 1)
	coo.Add(1, 1, 2)
	// Vertex 2 has no entries at all.
	if _, err := NewLDLT(coo.ToCSR(), OrderNatural); !errors.Is(err, ErrSingular) {
		t.Errorf("singular matrix: err = %v, want ErrSingular", err)
	}
	rect := sparse.NewCOO(2, 3).ToCSR()
	if _, err := NewLDLT(rect, OrderNatural); err == nil {
		t.Error("non-square matrix was accepted")
	}
}

// TestLDLTHandlesNegativeLeadingPivot pins the 1×1-pivot point: a matrix whose
// very first pivot is negative (so Cholesky dies immediately) factorises fine.
func TestLDLTHandlesNegativeLeadingPivot(t *testing.T) {
	a := sparse.NewCSRFromDense([][]float64{
		{-2, 1, 0},
		{1, -3, 1},
		{0, 1, 4},
	}, 0)
	if _, err := NewCholesky(a, OrderNatural); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("Cholesky on a negative-pivot matrix: %v, want ErrNotPositiveDefinite", err)
	}
	s, err := NewLDLT(a, OrderNatural)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg, zero := s.Inertia()
	if pos != 1 || neg != 2 || zero != 0 {
		t.Errorf("inertia = (%d+, %d-, %d zero), want (1+, 2-, 0 zero)", pos, neg, zero)
	}
	b := sparse.Vec{1, 2, 3}
	x := s.Solve(b)
	if r := a.Residual(x, b).NormInf(); r > 1e-12 {
		t.Errorf("residual %g", r)
	}
}
