package factor

import (
	"fmt"
	"sync"

	"repro/internal/sparse"
)

// Ordering selects the fill-reducing ordering of the sparse factorisations.
type Ordering int

const (
	// OrderNatural factorises the matrix as given.
	OrderNatural Ordering = iota
	// OrderRCM applies the reverse Cuthill–McKee ordering first; on the grid
	// Laplacians DTM tears apart this keeps the factor banded, so nnz(L) is
	// O(n·bandwidth) instead of the O(n²) a bad ordering can fill in to.
	OrderRCM
	// OrderAMD applies the approximate-minimum-degree ordering, which wins on
	// irregular patterns (EVS subgraphs with split twin vertices, saddle-point
	// couplings, random sparsity) where a breadth-first band is a poor model
	// of the elimination fill.
	OrderAMD
	// OrderND applies nested dissection: recursive vertex separators numbered
	// last, AMD on the leaf subgraphs. On large grid stencils it cuts both
	// fill and flops far below RCM's banded profile and yields the bushy
	// elimination trees the supernodal subtree scheduler parallelises.
	OrderND
	// OrderAuto picks per matrix: a nested-dissection or RCM ordering when
	// the pattern looks like a bounded-degree grid stencil (ND for large
	// blocks, RCM for small ones), AMD otherwise. This is the policy the auto
	// backend applies to every block it factorises sparsely.
	OrderAuto
)

// String returns the ordering's short name as used in reports and tests.
func (o Ordering) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderRCM:
		return "rcm"
	case OrderAMD:
		return "amd"
	case OrderND:
		return "nd"
	case OrderAuto:
		return "auto"
	default:
		return "unknown"
	}
}

// ParseOrdering maps an ordering's short name (as printed by String) back to
// the Ordering — the CLI flag parser.
func ParseOrdering(name string) (Ordering, error) {
	switch name {
	case "natural":
		return OrderNatural, nil
	case "rcm":
		return OrderRCM, nil
	case "amd":
		return OrderAMD, nil
	case "nd":
		return OrderND, nil
	case "auto":
		return OrderAuto, nil
	default:
		return 0, fmt.Errorf("factor: unknown ordering %q (have natural, rcm, amd, nd, auto)", name)
	}
}

var (
	ordMu           sync.RWMutex
	defaultOrdering = OrderAuto
)

// DefaultOrdering returns the ordering the registered sparse backends use.
func DefaultOrdering() Ordering {
	ordMu.RLock()
	defer ordMu.RUnlock()
	return defaultOrdering
}

// SetDefaultOrdering changes the ordering every registered sparse backend
// uses (the CLIs' -ordering flag steers every consumer at once, the same way
// SetDefault steers the backend choice). Constructing a backend directly via
// NewCholesky/NewLDLT/NewSupernodal still takes an explicit Ordering.
func SetDefaultOrdering(o Ordering) error {
	if o < OrderNatural || o > OrderAuto {
		return fmt.Errorf("factor: unknown ordering %d", o)
	}
	ordMu.Lock()
	defaultOrdering = o
	ordMu.Unlock()
	return nil
}

// OrderAuto policy thresholds. The 5-point and 7-point stencils of the grid
// workloads have off-diagonal degree at most 4 and 6, so a pattern whose
// maximum off-diagonal degree stays at or below autoOrderMaxGridDegree is
// treated as banded/grid-like; anything with a higher-degree row (twin-split
// EVS boundaries, saddle couplings, random irregular graphs) goes to AMD.
// Grid-like patterns of autoOrderNDMinDim unknowns and up are ordered by
// nested dissection — below that RCM's tighter banded profile wins, above it
// ND's separator fill (and the bushy etrees the subtree scheduler needs)
// dominates.
const (
	autoOrderMaxGridDegree = 8
	autoOrderNDMinDim      = 4096
)

// resolveOrdering maps OrderAuto to a concrete ordering for the given matrix;
// concrete orderings pass through unchanged. Only off-diagonal entries count
// towards the stencil degree bound — the diagonal is always present on the
// blocks the backends factorise and says nothing about the graph structure.
func resolveOrdering(a *sparse.CSR, order Ordering) Ordering {
	if order != OrderAuto {
		return order
	}
	n := a.Rows()
	for i := 0; i < n; i++ {
		cols, _ := a.RowView(i)
		deg := 0
		for _, j := range cols {
			if j != i {
				deg++
			}
		}
		if deg > autoOrderMaxGridDegree {
			return OrderAMD
		}
	}
	if n >= autoOrderNDMinDim {
		return OrderND
	}
	return OrderRCM
}

// fillReducing computes the permutation of the resolved ordering (nil for the
// natural order or when the computed ordering is the identity).
func fillReducing(a *sparse.CSR, order Ordering) Perm {
	var p Perm
	switch order {
	case OrderRCM:
		p = RCM(a)
	case OrderAMD:
		p = AMD(a)
	case OrderND:
		p = ND(a)
	default:
		return nil
	}
	if p.IsIdentity() {
		return nil
	}
	return p
}
