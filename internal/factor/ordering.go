package factor

import "repro/internal/sparse"

// Ordering selects the fill-reducing ordering of the sparse factorisations.
type Ordering int

const (
	// OrderNatural factorises the matrix as given.
	OrderNatural Ordering = iota
	// OrderRCM applies the reverse Cuthill–McKee ordering first; on the grid
	// Laplacians DTM tears apart this keeps the factor banded, so nnz(L) is
	// O(n·bandwidth) instead of the O(n²) a bad ordering can fill in to.
	OrderRCM
	// OrderAMD applies the approximate-minimum-degree ordering, which wins on
	// irregular patterns (EVS subgraphs with split twin vertices, saddle-point
	// couplings, random sparsity) where a breadth-first band is a poor model
	// of the elimination fill.
	OrderAMD
	// OrderAuto picks per matrix: RCM when the pattern looks like a bounded-
	// degree grid stencil, AMD otherwise. This is the policy the auto backend
	// applies to every block it factorises sparsely.
	OrderAuto
)

// String returns the ordering's short name as used in reports and tests.
func (o Ordering) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderRCM:
		return "rcm"
	case OrderAMD:
		return "amd"
	case OrderAuto:
		return "auto"
	default:
		return "unknown"
	}
}

// autoOrderMaxGridDegree is the degree bound of the OrderAuto policy: the
// 5-point and 7-point stencils of the grid workloads have off-diagonal degree
// at most 4 and 6, so a pattern whose maximum degree stays at or below this
// bound is treated as banded/grid-like and ordered by RCM. Anything with a
// higher-degree row (twin-split EVS boundaries, saddle couplings, random
// irregular graphs) goes to AMD.
const autoOrderMaxGridDegree = 8

// resolveOrdering maps OrderAuto to a concrete ordering for the given matrix;
// concrete orderings pass through unchanged.
func resolveOrdering(a *sparse.CSR, order Ordering) Ordering {
	if order != OrderAuto {
		return order
	}
	n := a.Rows()
	for i := 0; i < n; i++ {
		cols, _ := a.RowView(i)
		deg := len(cols)
		for _, j := range cols {
			if j == i {
				deg--
				break
			}
		}
		if deg > autoOrderMaxGridDegree {
			return OrderAMD
		}
	}
	return OrderRCM
}

// fillReducing computes the permutation of the resolved ordering (nil for the
// natural order or when the computed ordering is the identity).
func fillReducing(a *sparse.CSR, order Ordering) Perm {
	var p Perm
	switch order {
	case OrderRCM:
		p = RCM(a)
	case OrderAMD:
		p = AMD(a)
	default:
		return nil
	}
	if p.IsIdentity() {
		return nil
	}
	return p
}
