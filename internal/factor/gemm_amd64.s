//go:build amd64

#include "textflag.h"

// func cpuHasAVX() bool
//
// CPUID.1:ECX must report OSXSAVE (bit 27) and AVX (bit 28), and XCR0 must
// have the XMM and YMM state-save bits (1 and 2) set by the OS.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	MOVL	$0, CX
	CPUID
	MOVL	CX, AX
	ANDL	$0x18000000, AX
	CMPL	AX, $0x18000000
	JNE	no
	MOVL	$0, CX
	XGETBV
	ANDL	$6, AX
	CMPL	AX, $6
	JNE	no
	MOVB	$1, ret+0(FP)
	RET
no:
	MOVB	$0, ret+0(FP)
	RET

// func gemmTileAVX(c *float64, ldc int, ap, bp *float64, k int)
//
// One 4×4 tile of C = A·Bᵀ from k-major 4-wide packed panels. Column j of the
// tile is kept in Y(j); every shared-k step loads the four A-lanes once,
// broadcasts the four B-values, and does an unfused multiply then add per
// column — the identical per-element operation chain (ascending kk, separate
// roundings) as the pure-Go microkernel, so results match it byte for byte.
TEXT ·gemmTileAVX(SB), NOSPLIT, $0-40
	MOVQ	c+0(FP), DI
	MOVQ	ldc+8(FP), R8
	MOVQ	ap+16(FP), SI
	MOVQ	bp+24(FP), DX
	MOVQ	k+32(FP), CX
	SHLQ	$3, R8
	VXORPD	Y0, Y0, Y0
	VXORPD	Y1, Y1, Y1
	VXORPD	Y2, Y2, Y2
	VXORPD	Y3, Y3, Y3
	TESTQ	CX, CX
	JZ	store
	// Two shared-k steps per iteration while at least two remain.
	MOVQ	CX, BX
	SHRQ	$1, BX
	JZ	tail
loop2:
	VMOVUPD	(SI), Y4
	VBROADCASTSD	(DX), Y5
	VMULPD	Y4, Y5, Y5
	VADDPD	Y5, Y0, Y0
	VBROADCASTSD	8(DX), Y6
	VMULPD	Y4, Y6, Y6
	VADDPD	Y6, Y1, Y1
	VBROADCASTSD	16(DX), Y7
	VMULPD	Y4, Y7, Y7
	VADDPD	Y7, Y2, Y2
	VBROADCASTSD	24(DX), Y8
	VMULPD	Y4, Y8, Y8
	VADDPD	Y8, Y3, Y3
	VMOVUPD	32(SI), Y9
	VBROADCASTSD	32(DX), Y10
	VMULPD	Y9, Y10, Y10
	VADDPD	Y10, Y0, Y0
	VBROADCASTSD	40(DX), Y11
	VMULPD	Y9, Y11, Y11
	VADDPD	Y11, Y1, Y1
	VBROADCASTSD	48(DX), Y12
	VMULPD	Y9, Y12, Y12
	VADDPD	Y12, Y2, Y2
	VBROADCASTSD	56(DX), Y13
	VMULPD	Y9, Y13, Y13
	VADDPD	Y13, Y3, Y3
	ADDQ	$64, SI
	ADDQ	$64, DX
	DECQ	BX
	JNZ	loop2
tail:
	ANDQ	$1, CX
	JZ	store
	VMOVUPD	(SI), Y4
	VBROADCASTSD	(DX), Y5
	VMULPD	Y4, Y5, Y5
	VADDPD	Y5, Y0, Y0
	VBROADCASTSD	8(DX), Y6
	VMULPD	Y4, Y6, Y6
	VADDPD	Y6, Y1, Y1
	VBROADCASTSD	16(DX), Y7
	VMULPD	Y4, Y7, Y7
	VADDPD	Y7, Y2, Y2
	VBROADCASTSD	24(DX), Y8
	VMULPD	Y4, Y8, Y8
	VADDPD	Y8, Y3, Y3
store:
	VMOVUPD	Y0, (DI)
	ADDQ	R8, DI
	VMOVUPD	Y1, (DI)
	ADDQ	R8, DI
	VMOVUPD	Y2, (DI)
	ADDQ	R8, DI
	VMOVUPD	Y3, (DI)
	VZEROUPPER
	RET
