package factor

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/sparse"
)

// Factor cache: the factor-once/serve-many half of the solve service. A
// service-shaped workload (repeated dtmsolve invocations in one process,
// crash-restart refactorisations, preconditioner reuse, many solver
// goroutines sharing a matrix) keeps asking for the factor of the same
// matrix; the cache keys factors by a hash of the matrix pattern AND values
// (same pattern with different values is a different system and must miss),
// plus the backend name and the package ordering default — both change what
// New would build. Entries are LRU-evicted against a byte budget sized by
// the factors' real memory footprint.
//
// Hits return the cached LocalSolver. That is safe to share across
// goroutines because every backend's SolveTo/SolveBatchTo is reentrant —
// the PR-5 guarantee the cache turns into throughput. The cache retains a
// reference to the keying matrix to verify hits entry-by-entry (a hash
// collision must not hand back the wrong factor); callers must treat
// matrices as immutable once factored, which every caller in this
// repository already does.

// CacheStats is a snapshot of a cache's counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	UsedBytes int64
}

type cacheEntry struct {
	key     uint64
	backend string
	order   Ordering
	a       *sparse.CSR // retained for exact verification of hash hits
	solver  LocalSolver
	bytes   int64
}

// Cache is a concurrency-safe LRU factor cache with a byte budget.
type Cache struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	ll        *list.List               // front = most recently used; values are *cacheEntry
	byKey     map[uint64]*list.Element // hash -> entry (collisions verified, then chained by eviction)
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewCache returns a factor cache that holds at most budget bytes of factors
// (plus their keying matrices). A non-positive budget means unbounded.
func NewCache(budget int64) *Cache {
	return &Cache{budget: budget, ll: list.New(), byKey: make(map[uint64]*list.Element)}
}

// GetOrFactor returns the cached factor of a under the named backend,
// factoring and inserting on a miss. The boolean reports whether the call
// was a hit. An empty backend name resolves to Default(); factorisation
// errors are returned unchained and never cached.
func (c *Cache) GetOrFactor(backend string, a *sparse.CSR) (LocalSolver, bool, error) {
	if backend == "" {
		backend = Default()
	}
	order := DefaultOrdering()
	key := cacheKey(backend, order, a)

	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.backend == backend && e.order == order && sameMatrix(e.a, a) {
			c.ll.MoveToFront(el)
			c.hits++
			sol := e.solver
			c.mu.Unlock()
			return sol, true, nil
		}
		// True hash collision: evict the stale entry and refactor below.
		c.removeLocked(el)
	}
	c.misses++
	c.mu.Unlock()

	// Factor outside the lock — a large factorisation must not serialise
	// every concurrent cache user behind it.
	sol, err := newRaw(backend, a)
	if err != nil {
		return nil, false, err
	}
	e := &cacheEntry{key: key, backend: backend, order: order, a: a, solver: sol, bytes: entryBytes(sol, a)}

	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		// Another goroutine factored the same system while we did: keep the
		// canonical entry, drop ours.
		prev := el.Value.(*cacheEntry)
		if prev.backend == backend && prev.order == order && sameMatrix(prev.a, a) {
			c.ll.MoveToFront(el)
			sol := prev.solver
			c.mu.Unlock()
			return sol, false, nil
		}
		c.removeLocked(el)
	}
	c.byKey[key] = c.ll.PushFront(e)
	c.used += e.bytes
	for c.budget > 0 && c.used > c.budget && c.ll.Len() > 1 {
		c.evictions++
		c.removeLocked(c.ll.Back())
	}
	c.mu.Unlock()
	return sol, false, nil
}

// removeLocked unlinks an entry; the caller holds c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.byKey, e.key)
	c.used -= e.bytes
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len(), UsedBytes: c.used}
}

// Purge drops every entry (counters are kept).
func (c *Cache) Purge() {
	c.mu.Lock()
	for c.ll.Len() > 0 {
		c.removeLocked(c.ll.Back())
	}
	c.mu.Unlock()
}

// cacheKey hashes the backend name, the resolved package ordering default and
// the matrix — dimensions, pattern and value bits — with FNV-1a. Values are
// part of the key by design: a refreshed system with the same sparsity must
// refactor.
func cacheKey(backend string, order Ordering, a *sparse.CSR) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for i := 0; i < len(backend); i++ {
		h ^= uint64(backend[i])
		h *= prime64
	}
	mix(uint64(order))
	mix(uint64(a.Rows()))
	mix(uint64(a.Cols()))
	for i := 0; i < a.Rows(); i++ {
		cols, vals := a.RowView(i)
		mix(uint64(len(cols)))
		for t, j := range cols {
			mix(uint64(j))
			mix(math.Float64bits(vals[t]))
		}
	}
	return h
}

// sameMatrix reports exact equality of dimensions, pattern and values — the
// collision-proof verification behind every hash hit.
func sameMatrix(a, b *sparse.CSR) bool {
	if a == b {
		return true
	}
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		ca, va := a.RowView(i)
		cb, vb := b.RowView(i)
		if len(ca) != len(cb) {
			return false
		}
		for t := range ca {
			if ca[t] != cb[t] || math.Float64bits(va[t]) != math.Float64bits(vb[t]) {
				return false
			}
		}
	}
	return true
}

// factorSizer is implemented by backends that know their factor's memory
// footprint; entryBytes falls back to a dense-model estimate for the rest.
type factorSizer interface{ FactorBytes() int64 }

// entryBytes is the budget charge of a cache entry: the factor's footprint
// plus the retained keying matrix (~16 bytes per stored entry + row
// pointers).
func entryBytes(s LocalSolver, a *sparse.CSR) int64 {
	matrix := int64(a.NNZ())*16 + int64(a.Rows()+1)*8
	if fs, ok := s.(factorSizer); ok {
		return fs.FactorBytes() + matrix
	}
	n := int64(s.Dim())
	return 8*n*n + matrix
}

// Shared cache: when enabled, every factor.New routes through one
// process-wide cache — the switch the dtmsolve -factorcache flag and the
// crash-restart refactorisation path flip.
var sharedCacheMu sync.RWMutex
var sharedCacheC *Cache

// EnableSharedCache installs (and returns) a process-wide factor cache with
// the given byte budget that every subsequent New consults. Re-enabling
// replaces the previous shared cache.
func EnableSharedCache(budget int64) *Cache {
	c := NewCache(budget)
	sharedCacheMu.Lock()
	sharedCacheC = c
	sharedCacheMu.Unlock()
	return c
}

// DisableSharedCache removes the process-wide cache; New factors directly
// again.
func DisableSharedCache() {
	sharedCacheMu.Lock()
	sharedCacheC = nil
	sharedCacheMu.Unlock()
}

// SharedCache returns the process-wide cache, or nil when disabled.
func SharedCache() *Cache {
	sharedCacheMu.RLock()
	defer sharedCacheMu.RUnlock()
	return sharedCacheC
}
