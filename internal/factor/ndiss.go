package factor

import (
	"repro/internal/sparse"
)

// Nested-dissection ordering. RCM keeps grid factors banded, but a banded
// profile is exactly what makes the elimination tree a path: every column
// depends on the previous one, the supernodal scheduler finds no independent
// subtrees, and the factorisation costs O(n·bw²) flops. Nested dissection
// attacks both problems at once: a small vertex separator splits the graph
// into two halves that share no edges, the halves are ordered first (each
// recursively dissected the same way) and the separator last — so in the
// elimination tree the two halves hang off the separator as *independent
// subtrees* (bushy, the shape the subtree scheduler scales on) and the fill
// of a planar-ish graph drops from O(n·bw) to O(n·log n).
//
// The implementation is the classic level-set scheme, fully deterministic
// (every tie breaks towards the smaller vertex index):
//
//  1. BFS from a pseudo-peripheral vertex (George–Liu sweeps, as in RCM)
//     gives the level structure of the region.
//  2. The cut level is chosen to minimise separator size with a balance
//     guard (each half must keep at least ndBalanceMin of the non-separator
//     vertices); the cut level's vertices are the initial separator.
//  3. Fiduccia–Mattheyses-style boundary refinement shrinks the separator:
//     a separator vertex with neighbours on only one side moves to the other
//     side (the separator shrinks by one), and a vertex with exactly one
//     neighbour on the minority side swaps with it when that improves the
//     balance. Moves never introduce an A–B edge, so separation is invariant.
//  4. Regions at or below ndLeafSize vertices — where separators no longer
//     pay for themselves — are ordered by AMD on the leaf subgraph.
//
// The returned permutation follows the package convention perm[new] = old.

const (
	// ndLeafSize is the region order below which recursion stops and AMD
	// orders the leaf subgraph directly: at this size the fill saved by one
	// more separator no longer covers the dissection overhead.
	ndLeafSize = 80
	// ndMinLevels is the minimum number of BFS levels a region must span to
	// be cut by a level set; shallower regions (near-cliques, expander-ish
	// balls) have no small level-set separator and fall back to AMD.
	ndMinLevels = 5
	// ndBalanceMin is the balance guard of the cut-level choice: each half
	// must keep at least this fraction of the region's non-separator
	// vertices, so the recursion depth stays logarithmic.
	ndBalanceMin = 0.25
	// ndMaxRefinePasses bounds the boundary-refinement sweeps; each pass
	// either shrinks the separator or strictly improves the balance, so the
	// loop terminates long before the bound on real inputs.
	ndMaxRefinePasses = 8
)

// ND computes a nested-dissection ordering of the symmetric sparsity pattern
// of a. It is deterministic: identical input patterns produce identical
// permutations run over run.
func ND(a *sparse.CSR) Perm {
	n := a.Rows()
	perm := make(Perm, n)
	if n <= 1 {
		for i := range perm {
			perm[i] = i
		}
		return perm
	}
	st := newNdState(a)
	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	st.dissect(verts, perm)
	return perm
}

// ndState is the scratch shared by every level of the dissection recursion.
// Regions are identified by stamping inReg, BFS traversals by stamping mark,
// so no per-region clearing of the n-sized arrays is ever needed.
type ndState struct {
	a     *sparse.CSR
	xadj  []int32 // n+1 offsets into adj
	adj   []int32 // off-diagonal neighbour lists, ascending per vertex
	inReg []int32 // region membership stamp
	reg   int32   // current region stamp
	mark  []int32 // BFS visit stamp
	stamp int32   // current BFS stamp
	level []int32 // BFS level, valid where mark holds the current stamp
	side  []int8  // bisection assignment: 0 = A, 1 = B, 2 = separator
	queue []int32 // BFS traversal order of the latest bfsRegion call
}

func newNdState(a *sparse.CSR) *ndState {
	n := a.Rows()
	st := &ndState{
		a:     a,
		xadj:  make([]int32, n+1),
		inReg: make([]int32, n),
		mark:  make([]int32, n),
		level: make([]int32, n),
		side:  make([]int8, n),
		queue: make([]int32, 0, n),
	}
	nnz := 0
	for i := 0; i < n; i++ {
		cols, _ := a.RowView(i)
		for _, j := range cols {
			if j != i {
				nnz++
			}
		}
	}
	st.adj = make([]int32, 0, nnz)
	for i := 0; i < n; i++ {
		cols, _ := a.RowView(i)
		for _, j := range cols {
			if j != i {
				st.adj = append(st.adj, int32(j))
			}
		}
		st.xadj[i+1] = int32(len(st.adj))
	}
	return st
}

// dissect orders the region verts (ascending vertex order) into out
// (len(out) == len(verts), perm[new] = old convention).
func (st *ndState) dissect(verts []int32, out Perm) {
	if len(verts) <= ndLeafSize {
		st.leafOrder(verts, out)
		return
	}
	st.reg++
	rs := st.reg
	for _, v := range verts {
		st.inReg[v] = rs
	}

	// Disconnected regions dissect component by component — no separator is
	// needed between pieces that share no edges.
	if comps := st.components(verts, rs); comps != nil {
		pos := 0
		for _, comp := range comps {
			st.dissect(comp, out[pos:pos+len(comp)])
			pos += len(comp)
		}
		return
	}

	if !st.bisect(verts, rs) {
		// Too shallow to cut by a level set: no small separator exists here.
		st.leafOrder(verts, out)
		return
	}

	// Bucket by side; scanning verts (ascending) keeps each bucket ascending.
	na, nb := 0, 0
	for _, v := range verts {
		switch st.side[v] {
		case 0:
			na++
		case 1:
			nb++
		}
	}
	avs := make([]int32, 0, na)
	bvs := make([]int32, 0, nb)
	sep := out[na+nb:]
	si := 0
	for _, v := range verts {
		switch st.side[v] {
		case 0:
			avs = append(avs, v)
		case 1:
			bvs = append(bvs, v)
		default:
			sep[si] = int(v)
			si++
		}
	}
	st.dissect(avs, out[:na])
	st.dissect(bvs, out[na:na+nb])
}

// leafOrder orders a leaf region by AMD on its subgraph (single vertices are
// emitted directly).
func (st *ndState) leafOrder(verts []int32, out Perm) {
	if len(verts) == 1 {
		out[0] = int(verts[0])
		return
	}
	idx := make([]int, len(verts))
	for i, v := range verts {
		idx[i] = int(v)
	}
	p := AMD(st.a.Submatrix(idx, idx))
	for i, local := range p {
		out[i] = idx[local]
	}
}

// components returns the connected components of the region in ascending
// vertex order each, or nil when the region is connected.
func (st *ndState) components(verts []int32, rs int32) [][]int32 {
	st.stamp++
	cs := st.stamp
	ncomp := 0
	comp := st.level // reuse: per-vertex component id, valid under stamp cs
	for _, v := range verts {
		if st.mark[v] == cs {
			continue
		}
		st.mark[v] = cs
		comp[v] = int32(ncomp)
		q := st.queue[:0]
		q = append(q, v)
		for i := 0; i < len(q); i++ {
			u := q[i]
			for _, w := range st.adj[st.xadj[u]:st.xadj[u+1]] {
				if st.inReg[w] == rs && st.mark[w] != cs {
					st.mark[w] = cs
					comp[w] = int32(ncomp)
					q = append(q, w)
				}
			}
		}
		st.queue = q
		ncomp++
	}
	if ncomp == 1 {
		return nil
	}
	out := make([][]int32, ncomp)
	for _, v := range verts {
		c := comp[v]
		out[c] = append(out[c], v)
	}
	return out
}

// bfsRegion breadth-first-searches the (connected) region from root, filling
// level/mark/queue, and returns the eccentricity.
func (st *ndState) bfsRegion(root, rs int32) int32 {
	st.stamp++
	q := st.queue[:0]
	q = append(q, root)
	st.mark[root] = st.stamp
	st.level[root] = 0
	var ecc int32
	for i := 0; i < len(q); i++ {
		v := q[i]
		for _, w := range st.adj[st.xadj[v]:st.xadj[v+1]] {
			if st.inReg[w] != rs || st.mark[w] == st.stamp {
				continue
			}
			st.mark[w] = st.stamp
			st.level[w] = st.level[v] + 1
			if st.level[w] > ecc {
				ecc = st.level[w]
			}
			q = append(q, w)
		}
	}
	st.queue = q
	return ecc
}

// regionDegree counts v's neighbours inside the region.
func (st *ndState) regionDegree(v, rs int32) int {
	d := 0
	for _, w := range st.adj[st.xadj[v]:st.xadj[v+1]] {
		if st.inReg[w] == rs {
			d++
		}
	}
	return d
}

// bisect runs one level-set bisection of the connected region: BFS level
// structure from a pseudo-peripheral vertex, cut-level selection, FM-style
// boundary refinement. On success the side array holds the A/B/separator
// assignment of every region vertex; it returns false when the region is too
// shallow to cut (the caller falls back to a leaf ordering).
func (st *ndState) bisect(verts []int32, rs int32) bool {
	_, ecc := st.pseudoPeripheral(verts[0], rs)
	if int(ecc)+1 < ndMinLevels {
		return false
	}
	st.assignSides(verts, ecc)
	st.refineSides(verts, rs)
	return true
}

// pseudoPeripheral runs the George–Liu heuristic inside the region: BFS from
// start, move to a minimum-degree vertex of the deepest level, repeat while
// the eccentricity grows. It leaves level/queue describing the BFS from the
// returned root.
func (st *ndState) pseudoPeripheral(start, rs int32) (root, ecc int32) {
	root = start
	ecc = st.bfsRegion(root, rs)
	for sweep := 0; sweep < 8; sweep++ {
		cand, cdeg := int32(-1), 0
		for _, v := range st.queue {
			if st.level[v] != ecc {
				continue
			}
			if d := st.regionDegree(v, rs); cand == -1 || d < cdeg || (d == cdeg && v < cand) {
				cand, cdeg = v, d
			}
		}
		if cand == -1 || cand == root {
			break
		}
		cecc := st.bfsRegion(cand, rs)
		if cecc <= ecc {
			// The candidate did not improve; restore the best root's levels.
			st.bfsRegion(root, rs)
			break
		}
		root, ecc = cand, cecc
	}
	return root, ecc
}

// assignSides picks the cut level of the current BFS level structure and
// assigns every region vertex a side: levels below the cut to A, above to B,
// the cut level itself to the separator. The cut level minimises separator
// size among the balanced cuts (each half at least ndBalanceMin of the
// non-separator vertices); when no cut is balanced, the most balanced one
// wins. Ties break towards the smaller level.
func (st *ndState) assignSides(verts []int32, ecc int32) {
	sizes := make([]int32, ecc+1)
	for _, v := range verts {
		sizes[st.level[v]]++
	}
	total := len(verts)
	best, bestScore, bestBalanced := int32(1), 0.0, false
	cum := int(sizes[0])
	for m := int32(1); m < ecc; m++ {
		na, ns := cum, int(sizes[m])
		nb := total - na - ns
		cum += ns
		minSide := na
		if nb < minSide {
			minSide = nb
		}
		balanced := float64(minSide) >= ndBalanceMin*float64(na+nb)
		var score float64
		if balanced {
			// Among balanced cuts: separator size scaled up by the imbalance,
			// so a slightly larger separator still wins when it splits the
			// region near the middle (halving drives both the fill recurrence
			// and the subtree scheduler's load balance).
			imb := float64(na-nb) / float64(na+nb)
			if imb < 0 {
				imb = -imb
			}
			score = float64(ns) * (1 + imb)
		} else {
			// No balance: prefer the cut closest to balance regardless of size.
			score = -float64(minSide)
		}
		if m == 1 || (balanced && !bestBalanced) || (balanced == bestBalanced && score < bestScore) {
			best, bestScore, bestBalanced = m, score, balanced
		}
	}
	for _, v := range verts {
		switch {
		case st.level[v] < best:
			st.side[v] = 0
		case st.level[v] > best:
			st.side[v] = 1
		default:
			st.side[v] = 2
		}
	}
}

// refineSides shrinks the separator with Fiduccia–Mattheyses-style boundary
// moves. Each pass scans the separator in ascending vertex order:
//
//   - a vertex with no neighbour in one half moves to the other half
//     (separator −1, always an improvement);
//   - a vertex with exactly one neighbour in the smaller half swaps with it
//     (separator unchanged) when the swap strictly improves the balance.
//
// A move is only ever S→side, and a side vertex re-enters S only through a
// swap that removes its sole cross neighbour, so no A–B edge can appear.
func (st *ndState) refineSides(verts []int32, rs int32) {
	na, nb := 0, 0
	for _, v := range verts {
		switch st.side[v] {
		case 0:
			na++
		case 1:
			nb++
		}
	}
	for pass := 0; pass < ndMaxRefinePasses; pass++ {
		changed := false
		for _, v := range verts {
			if st.side[v] != 2 {
				continue
			}
			cntA, cntB := 0, 0
			lastA, lastB := int32(-1), int32(-1)
			for _, w := range st.adj[st.xadj[v]:st.xadj[v+1]] {
				if st.inReg[w] != rs {
					continue
				}
				switch st.side[w] {
				case 0:
					cntA++
					lastA = w
				case 1:
					cntB++
					lastB = w
				}
			}
			switch {
			case cntA == 0 && cntB == 0:
				// Interior to the separator: join the smaller half.
				if na <= nb {
					st.side[v] = 0
					na++
				} else {
					st.side[v] = 1
					nb++
				}
				changed = true
			case cntB == 0:
				st.side[v] = 0
				na++
				changed = true
			case cntA == 0:
				st.side[v] = 1
				nb++
				changed = true
			case cntB == 1 && na+1 < nb:
				// Swap towards the smaller half: v joins A, its sole B
				// neighbour replaces it in the separator.
				st.side[v] = 0
				st.side[lastB] = 2
				na++
				nb--
				changed = true
			case cntA == 1 && nb+1 < na:
				st.side[v] = 1
				st.side[lastA] = 2
				nb++
				na--
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// ndTopSplit runs only the first bisection of the nested dissection on the
// whole graph and reports the two half sizes and the separator size — the
// hook the balance property tests assert on. It returns ok=false when the
// graph is disconnected or too shallow to cut (the cases ND handles by
// recursing per component or falling back to AMD).
func ndTopSplit(a *sparse.CSR) (na, nb, ns int, ok bool) {
	n := a.Rows()
	if n == 0 {
		return 0, 0, 0, false
	}
	st := newNdState(a)
	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	st.reg++
	rs := st.reg
	for _, v := range verts {
		st.inReg[v] = rs
	}
	if comps := st.components(verts, rs); comps != nil {
		return 0, 0, 0, false
	}
	if !st.bisect(verts, rs) {
		return 0, 0, 0, false
	}
	for _, v := range verts {
		switch st.side[v] {
		case 0:
			na++
		case 1:
			nb++
		default:
			ns++
		}
	}
	return na, nb, ns, true
}
