package factor

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/sparse"
)

// ldltPivotRelTol is the 1×1 pivot acceptance threshold of the sparse LDLᵀ:
// a pivot whose magnitude falls below this fraction of the matrix's largest
// entry is declared (numerically) singular. Unlike Bunch–Kaufman there is no
// 2×2 pivot rescue — the symmetric quasi-definite and shifted-SNND blocks the
// auto policy routes here are exactly the class where 1×1 diagonal pivots are
// safe under any symmetric permutation.
const ldltPivotRelTol = 1e-13

// LDLT is the sparse factorisation P·A·Pᵀ = L·D·Lᵀ of a symmetric (not
// necessarily definite) matrix: L unit-lower-triangular stored strictly below
// the diagonal in compressed columns, D a diagonal of signed 1×1 pivots taken
// in the permuted order. The symbolic phase is shared with the sparse
// Cholesky (elimination tree + exact per-column counts — the pattern of L is
// the same because no numeric pivoting reorders rows), and the numeric phase
// is up-looking: one sparse unit-triangular solve per row.
//
// It is the backend that closes the frontier the ROADMAP called out: a block
// that is both too large to densify and merely SNND/indefinite no longer dies
// at ErrDenseTooLarge, because LDLᵀ tolerates the negative and near-zero
// pivots that make the Cholesky backends return ErrNotPositiveDefinite.
type LDLT struct {
	n        int
	order    Ordering // the resolved concrete ordering (never OrderAuto)
	perm     Perm     // perm[new] = old; nil when the ordering is the identity
	colPtr   []int
	rowIdx   []int32
	vals     []float64
	d        []float64
	scratch  sync.Pool // *sparse.Vec per-call solve scratch (SolveTo is reentrant)
	bscratch sync.Pool // *cscBatchScratch, acquired once per SolveBatchTo call
}

// NewLDLT factorises the sparse symmetric matrix a under the given ordering
// (OrderAuto resolves per the grid-vs-irregular policy). It returns an error
// wrapping dense.ErrSingular when a pivot is numerically zero; there is no
// definiteness requirement.
func NewLDLT(a *sparse.CSR, order Ordering) (*LDLT, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("factor: sparse LDLT of non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	s := &LDLT{n: n, order: resolveOrdering(a, order)}
	s.scratch.New = func() any { v := sparse.NewVec(n); return &v }
	s.bscratch.New = func() any { return new(cscBatchScratch) }
	c := a
	if n > 1 {
		if p := fillReducing(a, s.order); p != nil {
			s.perm = p
			c = PermuteSym(a, p)
		}
	}
	pivTol := ldltPivotRelTol * a.MaxAbs()

	parent := etree(c)

	// Symbolic phase: identical reach computation as the sparse Cholesky, but
	// the diagonal lives in d, so count[j] holds only the strictly-below
	// entries of column j.
	mark := make([]int, n)
	stack := make([]int, n)
	pattern := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	count := make([]int, n)
	for k := 0; k < n; k++ {
		top := ereach(c, k, parent, mark, stack, pattern)
		for _, j := range pattern[top:] {
			count[j]++
		}
	}
	s.colPtr = make([]int, n+1)
	for j := 0; j < n; j++ {
		s.colPtr[j+1] = s.colPtr[j] + count[j]
	}
	s.rowIdx = make([]int32, s.colPtr[n])
	s.vals = make([]float64, s.colPtr[n])
	s.d = make([]float64, n)

	// Numeric phase (up-looking): solve L(0:k-1,0:k-1)·y = C(0:k-1,k) over the
	// ereach pattern (unit diagonal, so y[j] needs no division), then
	// l(k,j) = y[j]/d[j] and d[k] = c(k,k) − Σ l(k,j)·y[j].
	for i := range mark {
		mark[i] = -1
	}
	fill := make([]int, n)
	copy(fill, s.colPtr[:n])
	y := make([]float64, n)
	for k := 0; k < n; k++ {
		top := ereach(c, k, parent, mark, stack, pattern)
		dk := 0.0
		cols, vals := c.RowView(k)
		for t, j := range cols {
			if j > k {
				break
			}
			if j == k {
				dk = vals[t]
			} else {
				y[j] = vals[t]
			}
		}
		for _, j := range pattern[top:] {
			yj := y[j]
			y[j] = 0
			for p := s.colPtr[j]; p < fill[j]; p++ {
				y[s.rowIdx[p]] -= s.vals[p] * yj
			}
			lkj := yj / s.d[j]
			dk -= lkj * yj
			s.rowIdx[fill[j]] = int32(k)
			s.vals[fill[j]] = lkj
			fill[j]++
		}
		if math.Abs(dk) <= pivTol || math.IsNaN(dk) {
			return nil, fmt.Errorf("%w: LDLT pivot %d is %g (threshold %g)", ErrSingular, k, dk, pivTol)
		}
		s.d[k] = dk
	}
	return s, nil
}

// Dim returns the dimension of the factorised matrix.
func (s *LDLT) Dim() int { return s.n }

// Backend implements LocalSolver.
func (s *LDLT) Backend() string { return SparseLDLT }

// Ordering returns the concrete fill-reducing ordering the factorisation
// resolved to (OrderRCM or OrderAMD when built with OrderAuto).
func (s *LDLT) Ordering() Ordering { return s.order }

// NNZL returns the number of stored strictly-lower entries of L (the diagonal
// is implicit and D adds n more values).
func (s *LDLT) NNZL() int { return len(s.vals) }

// FactorBytes returns the factor's resident memory footprint (values, D, row
// indices, column pointers, permutation) — the factor cache's budget unit.
func (s *LDLT) FactorBytes() int64 {
	return int64(len(s.vals)+len(s.d))*8 + int64(len(s.rowIdx))*4 + int64(len(s.colPtr)+len(s.perm))*8
}

// Inertia returns the number of positive, negative and exactly-zero pivots
// of D — by Sylvester's law the inertia of A itself — which is how callers
// can tell a definite block from a genuine saddle point after the fact.
// Pivots are classified by exact sign; a zero is counted as neither positive
// nor negative, the same convention as Supernodal.Inertia. (The pivot
// acceptance threshold means a zero can only be reported when max|A| is
// itself zero — every other near-zero pivot fails the factorisation with
// ErrSingular first.)
func (s *LDLT) Inertia() (pos, neg, zero int) {
	return inertiaOf(s.d)
}

// inertiaOf classifies the pivots of d by exact sign — shared by the scalar
// and supernodal LDLᵀ backends so their inertia reports cannot drift apart.
func inertiaOf(d []float64) (pos, neg, zero int) {
	for _, v := range d {
		switch {
		case v > 0:
			pos++
		case v < 0:
			neg++
		default:
			zero++
		}
	}
	return pos, neg, zero
}

// Solve solves A·x = b and returns x.
func (s *LDLT) Solve(b sparse.Vec) sparse.Vec {
	x := sparse.NewVec(s.n)
	s.SolveTo(x, b)
	return x
}

// SolveTo solves A·x = b into x: permute, forward-substitute the unit lower
// triangle, scale by D⁻¹, backward-substitute Lᵀ, permute back. x may alias
// b. SolveTo is reentrant — the scratch is per call — so one factor may serve
// concurrent solves.
func (s *LDLT) SolveTo(x, b sparse.Vec) {
	n := s.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("factor: sparse LDLT solve dimension mismatch n=%d len(b)=%d len(x)=%d", n, len(b), len(x)))
	}
	wp := s.scratch.Get().(*sparse.Vec)
	w := *wp
	if s.perm != nil {
		for i, old := range s.perm {
			w[i] = b[old]
		}
	} else {
		copy(w, b)
	}
	// Forward: L y = P b (unit diagonal), column-oriented contiguous scans.
	for j := 0; j < n; j++ {
		wj := w[j]
		if wj == 0 {
			continue
		}
		for p := s.colPtr[j]; p < s.colPtr[j+1]; p++ {
			w[s.rowIdx[p]] -= s.vals[p] * wj
		}
	}
	// Diagonal: z = D⁻¹ y.
	for j := 0; j < n; j++ {
		w[j] /= s.d[j]
	}
	// Backward: Lᵀ x = z, reading the same columns as dot products.
	for j := n - 1; j >= 0; j-- {
		sum := w[j]
		for p := s.colPtr[j]; p < s.colPtr[j+1]; p++ {
			sum -= s.vals[p] * w[s.rowIdx[p]]
		}
		w[j] = sum
	}
	if s.perm != nil {
		for i, old := range s.perm {
			x[old] = w[i]
		}
	} else {
		copy(x, w)
	}
	s.scratch.Put(wp)
}

// SolveBatchTo solves A·X[r] = B[r] for every right-hand side of the batch
// with one sweep over the factor per direction instead of k (row-major n×kp
// panel, contiguous per-column scans). Per right-hand side the operations
// and their order are exactly SolveTo's — including the zero skip of the
// unit forward sweep, applied per panel element — so the bytes agree; the
// scratch is acquired once per batch. X[r] may alias B[r]; reentrant.
func (s *LDLT) SolveBatchTo(X, B []sparse.Vec) {
	batchValidate("sparse LDLT", s.n, X, B)
	if len(B) == 0 {
		return
	}
	if len(B) == 1 {
		s.SolveTo(X[0], B[0])
		return
	}
	n := s.n
	for r0 := 0; r0 < len(B); r0 += snBatchMaxK {
		r1 := r0 + snBatchMaxK
		if r1 > len(B) {
			r1 = len(B)
		}
		Xp, Bp := X[r0:r1], B[r0:r1]
		sc := s.bscratch.Get().(*cscBatchScratch)
		kp := len(Bp)
		w := growFloats(&sc.w, n*kp)
		vb := growFloats(&sc.vbuf, kp)
		batchPanelIn(w, Bp, s.perm, n)
		// Forward: L Y = P B (unit diagonal). A zero panel element skips its
		// column scan entry exactly as the scalar sweep skips the column.
		for j := 0; j < n; j++ {
			copy(vb, w[j*kp:j*kp+kp])
			zero := true
			for _, v := range vb {
				if v != 0 {
					zero = false
					break
				}
			}
			if zero {
				continue
			}
			for p := s.colPtr[j]; p < s.colPtr[j+1]; p++ {
				lv := s.vals[p]
				dst := w[int(s.rowIdx[p])*kp:]
				for r, v := range vb {
					if v != 0 {
						dst[r] -= lv * v
					}
				}
			}
		}
		// Diagonal: Z = D⁻¹ Y.
		for j := 0; j < n; j++ {
			dj := s.d[j]
			base := w[j*kp : j*kp+kp]
			for r := range base {
				base[r] /= dj
			}
		}
		// Backward: Lᵀ X = Z, the same columns as dot products per RHS.
		for j := n - 1; j >= 0; j-- {
			base := w[j*kp : j*kp+kp]
			for p := s.colPtr[j]; p < s.colPtr[j+1]; p++ {
				lv := s.vals[p]
				src := w[int(s.rowIdx[p])*kp:]
				for r := range base {
					base[r] -= lv * src[r]
				}
			}
		}
		batchPanelOut(w, Xp, s.perm, n)
		s.bscratch.Put(sc)
	}
}
