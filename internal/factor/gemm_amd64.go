//go:build amd64

package factor

// gemmUseAVX reports whether the AVX tile microkernel is usable: the CPU must
// advertise AVX and the OS must save the YMM state. Checked once at package
// init; the packed kernels branch on it per tile.
//
// The AVX kernel is byte-identical to the pure-Go tile: it evaluates the same
// multiply and add in the same per-element order over the shared dimension
// with separate IEEE-754 roundings (VMULPD then VADDPD, never a fused
// multiply-add — gc does not fuse on amd64 either), so enabling it changes
// throughput and nothing else.
var gemmUseAVX = cpuHasAVX()

// cpuHasAVX is implemented in gemm_amd64.s (CPUID + XGETBV).
func cpuHasAVX() bool

// gemmTileAVX accumulates one 4×4 output tile from k-major 4-wide packed
// panels: c[j*ldc+i] = Σ_kk ap[kk*4+i]·bp[kk*4+j] for i,j in 0..3, writing the
// full tile (callers pad c exactly as the pure-Go tile requires). Implemented
// in gemm_amd64.s.
func gemmTileAVX(c *float64, ldc int, ap, bp *float64, k int)
