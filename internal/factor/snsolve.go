package factor

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sparse"
)

// Parallel and batched triangular solves of the supernodal factorisation.
//
// Both paths are byte-identical to the sequential SolveSeqTo because every
// value of the solution is produced by the same floating-point operations in
// the same order:
//
//   - The level solve rewrites the forward sweep from scatter form (each
//     supernode pushes its contribution down to ancestor rows) to gather form
//     (each supernode pulls its descendants' contributions through the
//     retained symbolic update lists). Per solution row the subtractions
//     arrive in the identical order — ascending descendant, each descendant's
//     contribution pre-summed over its columns ascending — and gather form
//     makes same-level supernodes write-disjoint, so they parallelise without
//     locks. The backward sweep is write-disjoint as written.
//   - The batched solve replaces k scalar sweeps with one panel sweep whose
//     rectangular updates run through the packed rank-k kernels. The kernels
//     accumulate each output element over the shared dimension ascending —
//     the same chain the scalar sweep runs — so every right-hand side of the
//     panel gets the scalar solve's bytes.
const (
	// snParSolveMinNNZ is the factor size (stored entries) under which the
	// level-scheduled solve cannot beat the sequential sweep: below it the
	// per-level goroutine handoff dominates the O(nnz(L)) sweep itself.
	snParSolveMinNNZ = 150000
	// snLevelParMinWork is the per-level flop floor for spawning workers;
	// cheaper levels (the narrow top of the tree) run inline.
	snLevelParMinWork = 20000
	// snBatchMaxK caps the right-hand-side panel width per sweep; wider
	// batches run as several passes so the working panel and the packed
	// operands stay cache-resident.
	snBatchMaxK = 64
)

// snParScratch is the per-call scratch of the level-scheduled solve: the
// permuted working vector plus one gather buffer per worker slot (workers
// never share a gather buffer, so the backward sweep races on nothing).
type snParScratch struct {
	w sparse.Vec
	g [][]float64
}

// snBatchScratch is the per-batch scratch of SolveBatchTo, acquired once per
// panel sweep rather than once per right-hand side: the row-major n×kp
// working panel, the pivot-row buffer, and the packed-operand/accumulator
// buffers of the rank-k kernels.
type snBatchScratch struct {
	w    []float64 // working panel, row-major n×kp
	vbuf []float64 // solved pivot row of the diagonal-block sweep (kp values)
	ab   []float64 // packed left operand, one forward row chunk
	bb   []float64 // packed right operand (forward: Yᵀ, backward: Gᵀ)
	ta   []float64 // packed L21ᵀ (backward left operand)
	cb   []float64 // kernel accumulation chunk
}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// SolveLevelTo solves A·x = b into x with the level-scheduled parallel
// substitution: supernodes of one elimination-tree level share no
// ancestor/descendant relation, so the forward sweep dispatches each level's
// supernodes (gather form) across goroutines behind a per-level barrier,
// ascending; the backward sweep does the same descending. Results are
// byte-identical to SolveSeqTo at every GOMAXPROCS — the dispatch changes
// which goroutine runs a supernode, never the operations it runs. x may alias
// b; the call is reentrant like SolveSeqTo.
func (s *Supernodal) SolveLevelTo(x, b sparse.Vec) {
	n := s.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("factor: supernodal solve dimension mismatch n=%d len(b)=%d len(x)=%d", n, len(b), len(x)))
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > snMaxWorkers {
		workers = snMaxWorkers
	}
	if workers < 1 {
		workers = 1
	}
	ps := s.lscratch.Get().(*snParScratch)
	w := ps.w
	if s.perm != nil {
		for i, old := range s.perm {
			w[i] = b[old]
		}
	} else {
		copy(w, b)
	}

	nlev := len(s.levPtr) - 1
	gFor := func(slot int) []float64 {
		for len(ps.g) <= slot {
			ps.g = append(ps.g, make([]float64, s.maxLd))
		}
		return ps.g[slot]
	}
	// Forward: levels ascending, gather form.
	for l := 0; l < nlev; l++ {
		list := s.levList[s.levPtr[l]:s.levPtr[l+1]]
		if workers == 1 || len(list) < 2 || s.levWork[l] < snLevelParMinWork {
			for _, sn := range list {
				s.forwardSupernodeGather(int(sn), w)
			}
			continue
		}
		s.runLevel(list, workers, func(sub []int32, _ int) {
			for _, sn := range sub {
				s.forwardSupernodeGather(int(sn), w)
			}
		})
	}
	if s.mode == ModeLDLT {
		for j := 0; j < n; j++ {
			w[j] /= s.d[j]
		}
	}
	// Backward: levels descending. Each supernode needs a private gather
	// buffer; chunk slots index into the per-call buffer set.
	for l := nlev - 1; l >= 0; l-- {
		list := s.levList[s.levPtr[l]:s.levPtr[l+1]]
		if workers == 1 || len(list) < 2 || s.levWork[l] < snLevelParMinWork {
			g := gFor(0)
			for _, sn := range list {
				s.backwardSupernode(int(sn), w, g)
			}
			continue
		}
		// Pre-grow the buffer set before spawning (gFor appends are not
		// goroutine-safe).
		nw := workers
		if nw > len(list) {
			nw = len(list)
		}
		gFor(nw - 1)
		s.runLevel(list, workers, func(sub []int32, slot int) {
			g := ps.g[slot]
			for _, sn := range sub {
				s.backwardSupernode(int(sn), w, g)
			}
		})
	}
	if s.perm != nil {
		for i, old := range s.perm {
			x[old] = w[i]
		}
	} else {
		copy(x, w)
	}
	s.lscratch.Put(ps)
}

// runLevel splits one level's supernode list into contiguous chunks and runs
// them concurrently, waiting for the whole level before returning (the
// barrier the next level's dependencies need). The chunk a supernode lands in
// affects only which goroutine executes it.
func (s *Supernodal) runLevel(list []int32, workers int, run func(sub []int32, slot int)) {
	nw := workers
	if nw > len(list) {
		nw = len(list)
	}
	chunk := (len(list) + nw - 1) / nw
	var wg sync.WaitGroup
	slot := 0
	for c0 := 0; c0 < len(list); c0 += chunk {
		c1 := c0 + chunk
		if c1 > len(list) {
			c1 = len(list)
		}
		wg.Add(1)
		go func(sub []int32, slot int) {
			defer wg.Done()
			run(sub, slot)
		}(list[c0:c1], slot)
		slot++
	}
	wg.Wait()
}

// forwardSupernodeGather runs supernode sn's slice of the forward sweep
// L y = P b in gather (left-looking) form: pull every descendant
// contribution through the retained update lists — ascending descendant
// order, each contribution pre-summed over the descendant's columns ascending
// with the same zero-skip as the scatter form, so the bytes match
// SolveSeqTo's — then the dense (unit-)lower solve on the diagonal block.
// Writes land only in w[f:f+width]: the update windows [lo,hi) cover exactly
// the descendant rows inside this supernode's columns.
func (s *Supernodal) forwardSupernodeGather(sn int, w sparse.Vec) {
	f := int(s.sfirst[sn])
	width := int(s.sfirst[sn+1]) - f
	ld := int(s.rx[sn+1] - s.rx[sn])
	panel := s.panel[s.px[sn]:s.px[sn+1]]
	unit := s.mode == ModeLDLT
	for _, u := range s.upd[sn] {
		d := int(u.d)
		fd := int(s.sfirst[d])
		wd := int(s.sfirst[d+1]) - fd
		ldd := int(s.rx[d+1] - s.rx[d])
		dpanel := s.panel[s.px[d]:s.px[d+1]]
		drows := s.rowind[s.rx[d]:s.rx[d+1]]
		for t := int(u.lo); t < int(u.hi); t++ {
			sum := 0.0
			for jj := 0; jj < wd; jj++ {
				v := w[fd+jj]
				if v == 0 {
					continue
				}
				sum += dpanel[jj*ldd+t] * v
			}
			w[drows[t]] -= sum
		}
	}
	for jj := 0; jj < width; jj++ {
		col := panel[jj*ld:]
		v := w[f+jj]
		if !unit {
			v /= col[jj]
			w[f+jj] = v
		}
		if v == 0 {
			continue
		}
		for i := jj + 1; i < width; i++ {
			w[f+i] -= col[i] * v
		}
	}
}

// SolveBatchTo solves A·X[r] = B[r] for every right-hand side of the batch by
// sweeping the whole panel through the factor once per supernode instead of
// once per RHS: the diagonal-block solves run across the panel row-wise, and
// the rectangular updates become rank-width panel products through the packed
// 4×4 kernels (one operand pack per supernode, amortised over the batch). The
// scratch panel is acquired once per batch. Every X[r] carries exactly the
// bytes SolveSeqTo(X[r], B[r]) would produce; batches wider than snBatchMaxK
// run as several passes. X[r] may alias B[r]; the call is reentrant.
func (s *Supernodal) SolveBatchTo(X, B []sparse.Vec) {
	batchValidate("supernodal", s.n, X, B)
	if len(B) == 0 {
		return
	}
	if len(B) == 1 {
		s.SolveSeqTo(X[0], B[0])
		return
	}
	for r0 := 0; r0 < len(B); r0 += snBatchMaxK {
		r1 := r0 + snBatchMaxK
		if r1 > len(B) {
			r1 = len(B)
		}
		s.solvePanel(X[r0:r1], B[r0:r1])
	}
}

// solvePanel is one pass of SolveBatchTo: kp ≤ snBatchMaxK right-hand sides
// as a row-major n×kp working panel.
func (s *Supernodal) solvePanel(X, B []sparse.Vec) {
	n, kp := s.n, len(B)
	sc := s.bscratch.Get().(*snBatchScratch)
	mld := s.maxLd
	if mld < snMaxWidth {
		mld = snMaxWidth
	}
	w := growFloats(&sc.w, n*kp)
	vb := growFloats(&sc.vbuf, kp)
	ab := growFloats(&sc.ab, snChunkRows*snMaxWidth)
	bb := growFloats(&sc.bb, snBatchMaxK*mld)
	ta := growFloats(&sc.ta, snMaxWidth*mld)
	cb := growFloats(&sc.cb, snChunkRows*snBatchMaxK)

	batchPanelIn(w, B, s.perm, n)
	unit := s.mode == ModeLDLT

	// Forward: L Y = P B. Diagonal-block solve across the panel, then the
	// rectangular update as one rank-width product per row chunk.
	for sn := 0; sn < s.ns; sn++ {
		f := int(s.sfirst[sn])
		width := int(s.sfirst[sn+1]) - f
		ld := int(s.rx[sn+1] - s.rx[sn])
		panel := s.panel[s.px[sn]:s.px[sn+1]]
		rows := s.rowind[s.rx[sn]:s.rx[sn+1]]
		for jj := 0; jj < width; jj++ {
			col := panel[jj*ld:]
			base := w[(f+jj)*kp : (f+jj)*kp+kp]
			if !unit {
				piv := col[jj]
				for r, v := range base {
					v /= piv
					base[r] = v
					vb[r] = v
				}
			} else {
				copy(vb, base)
			}
			// The scalar sweep skips a zero pivot value entirely; mirror that
			// per panel element, but hoist the zero scan out of the column
			// loop — pivot rows without zeros (the common case) run the tight
			// unguarded loop, which only differs from the guarded one by the
			// subtractions the guard would skip.
			anyZero := false
			for _, v := range vb {
				if v == 0 {
					anyZero = true
					break
				}
			}
			if anyZero {
				for i := jj + 1; i < width; i++ {
					lij := col[i]
					dst := w[(f+i)*kp : (f+i)*kp+kp]
					for r, v := range vb {
						if v != 0 {
							dst[r] -= lij * v
						}
					}
				}
			} else {
				for i := jj + 1; i < width; i++ {
					lij := col[i]
					dst := w[(f+i)*kp : (f+i)*kp+kp]
					for r, v := range vb {
						dst[r] -= lij * v
					}
				}
			}
		}
		m := ld - width
		if m == 0 {
			continue
		}
		// Left operand: Yᵀ — the solved rows of this supernode, read as a
		// column-major kp×width block of the working panel. Keeping Y on the
		// kernel's A side makes the product land row-major per destination row
		// (ldc = kp4), so the scatter-subtract below runs contiguous in both
		// the chunk and the panel.
		kp4 := (kp + 3) &^ 3
		packPanels(bb, w[f*kp:], kp, 0, kp, width, nil)
		for ii := 0; ii < m; ii += snChunkRows {
			mc := m - ii
			if mc > snChunkRows {
				mc = snChunkRows
			}
			packPanels(ab, panel, ld, width+ii, mc, width, nil)
			gemmPacked(cb, kp4, bb, kp, ab, mc, width)
			for i := 0; i < mc; i++ {
				dst := w[int(rows[width+ii+i])*kp : int(rows[width+ii+i])*kp+kp]
				src := cb[i*kp4 : i*kp4+kp]
				for r, v := range src {
					dst[r] -= v
				}
			}
		}
	}
	if unit {
		for j := 0; j < n; j++ {
			dj := s.d[j]
			dst := w[j*kp : j*kp+kp]
			for r := range dst {
				dst[r] /= dj
			}
		}
	}
	// Backward: Lᵀ Z = Y, supernodes descending. The rectangular contribution
	// is one width×kp product L21ᵀ·G (G gathered from the ancestor rows of
	// the panel), subtracted before the dense triangular solve — the same
	// split, and the same ascending-row accumulation per element, as
	// backwardSupernode.
	for sn := s.ns - 1; sn >= 0; sn-- {
		f := int(s.sfirst[sn])
		width := int(s.sfirst[sn+1]) - f
		ld := int(s.rx[sn+1] - s.rx[sn])
		panel := s.panel[s.px[sn]:s.px[sn+1]]
		rows := s.rowind[s.rx[sn]:s.rx[sn+1]]
		m := ld - width
		if m > 0 {
			kp4 := (kp + 3) &^ 3
			packPanelsT(ta, panel, ld, width, width, m)
			packPanelsGather(bb, w, kp, rows[width:], m)
			// G on the A side: the product lands row-major per supernode
			// column (ldc = kp4), so the subtraction is contiguous.
			gemmPacked(cb, kp4, bb, kp, ta, width, m)
			for t := 0; t < width; t++ {
				dst := w[(f+t)*kp : (f+t)*kp+kp]
				src := cb[t*kp4 : t*kp4+kp]
				for r, v := range src {
					dst[r] -= v
				}
			}
		}
		for jj := width - 1; jj >= 0; jj-- {
			col := panel[jj*ld:]
			base := w[(f+jj)*kp : (f+jj)*kp+kp]
			for i := jj + 1; i < width; i++ {
				lij := col[i]
				src := w[(f+i)*kp:]
				for r := range base {
					base[r] -= lij * src[r]
				}
			}
			if !unit {
				piv := col[jj]
				for r := range base {
					base[r] /= piv
				}
			}
		}
	}
	batchPanelOut(w, X, s.perm, n)
	s.bscratch.Put(sc)
}
