package factor

import (
	"math"

	"repro/internal/sparse"
)

// Dense numeric kernels of the supernodal factorisation. Every kernel works
// on column-major panels and is deterministic: a supernode's floating-point
// operations run in one fixed order no matter which worker executes it or how
// many workers exist, which is what makes the parallel factorisation
// byte-identical to the sequential one.
//
// The rank-k update is organised like a register-blocked BLAS: both operands
// are packed into contiguous 4-wide, k-major panels (zero-padded, so the
// 4×4 microkernel has no remainder cases), the product accumulates in sixteen
// registers per tile, and the result lands in a cache-resident chunk buffer
// before being scattered into the target supernode.

// snPanelStrip is the column-strip width of the blocked trapezoidal
// factorisation: strips factorise scalar, everything to their right updates
// through the packed microkernel.
const snPanelStrip = 8

// snWorker is the per-worker scratch of the numeric phase. Workers never
// share scratch, so independent subtrees race on nothing.
type snWorker struct {
	relind []int32   // global row -> row within the supernode being built
	abuf   []float64 // packed left operand, one row chunk
	bbuf   []float64 // packed right operand (D-scaled in LDLᵀ mode)
	cbuf   []float64 // accumulation chunk (snChunkRows × snMaxWidth, padded)
}

func newSnWorker(n int) *snWorker {
	return &snWorker{
		relind: make([]int32, n),
		abuf:   make([]float64, snChunkRows*snMaxWidth),
		bbuf:   make([]float64, snMaxWidth*snMaxWidth),
		cbuf:   make([]float64, snChunkRows*snMaxWidth),
	}
}

// packPanels packs rows [rowOff, rowOff+rows) of the ld-strided column-major
// k-column matrix src into dst as ⌈rows/4⌉ consecutive k-major 4-row panels,
// zero-padding the last panel. When scale is non-nil, column kk is multiplied
// by scale[kk] on the way in (the D of an LDLᵀ update).
func packPanels(dst, src []float64, ld, rowOff, rows, k int, scale []float64) {
	for ip := 0; ip < rows; ip += 4 {
		base := ip * k
		r := rows - ip
		if r > 4 {
			r = 4
		}
		for kk := 0; kk < k; kk++ {
			s := src[kk*ld+rowOff+ip:]
			d := dst[base+kk*4 : base+kk*4+4 : base+kk*4+4]
			f := 1.0
			if scale != nil {
				f = scale[kk]
			}
			switch r {
			case 4:
				d[0], d[1], d[2], d[3] = s[0]*f, s[1]*f, s[2]*f, s[3]*f
			case 3:
				d[0], d[1], d[2], d[3] = s[0]*f, s[1]*f, s[2]*f, 0
			case 2:
				d[0], d[1], d[2], d[3] = s[0]*f, s[1]*f, 0, 0
			default:
				d[0], d[1], d[2], d[3] = s[0]*f, 0, 0, 0
			}
		}
	}
}

// packPanelsT packs the transpose of a column-major block: packed element
// (ip, kk) is src[ip*ld + colOff + kk] — row ip of the packed operand is
// column ip of the source, read across columns colOff..colOff+k. Used by the
// batched backward sweep, where the operand is L21ᵀ (k-major 4-row panels,
// zero-padded like packPanels).
func packPanelsT(dst, src []float64, ld, colOff, rows, k int) {
	for ip := 0; ip < rows; ip += 4 {
		base := ip * k
		r := rows - ip
		if r > 4 {
			r = 4
		}
		s0 := src[ip*ld+colOff:]
		var s1, s2, s3 []float64
		if r > 1 {
			s1 = src[(ip+1)*ld+colOff:]
		}
		if r > 2 {
			s2 = src[(ip+2)*ld+colOff:]
		}
		if r > 3 {
			s3 = src[(ip+3)*ld+colOff:]
		}
		for kk := 0; kk < k; kk++ {
			d := dst[base+kk*4 : base+kk*4+4 : base+kk*4+4]
			switch r {
			case 4:
				d[0], d[1], d[2], d[3] = s0[kk], s1[kk], s2[kk], s3[kk]
			case 3:
				d[0], d[1], d[2], d[3] = s0[kk], s1[kk], s2[kk], 0
			case 2:
				d[0], d[1], d[2], d[3] = s0[kk], s1[kk], 0, 0
			default:
				d[0], d[1], d[2], d[3] = s0[kk], 0, 0, 0
			}
		}
	}
}

// packPanelsGather packs the transpose of scattered rows of the row-major
// n×kp panel w: packed element (ip, kk) is w[rows[kk]*kp + ip] — the RHS
// values of panel column ip at the gathered rows. Used by the batched
// backward sweep, where the operand is Gᵀ (the ancestor rows of the working
// panel).
func packPanelsGather(dst, w []float64, kp int, rows []int32, k int) {
	for ip := 0; ip < kp; ip += 4 {
		base := ip * k
		r := kp - ip
		if r > 4 {
			r = 4
		}
		for kk := 0; kk < k; kk++ {
			s := w[int(rows[kk])*kp+ip:]
			d := dst[base+kk*4 : base+kk*4+4 : base+kk*4+4]
			switch r {
			case 4:
				d[0], d[1], d[2], d[3] = s[0], s[1], s[2], s[3]
			case 3:
				d[0], d[1], d[2], d[3] = s[0], s[1], s[2], 0
			case 2:
				d[0], d[1], d[2], d[3] = s[0], s[1], 0, 0
			default:
				d[0], d[1], d[2], d[3] = s[0], 0, 0, 0
			}
		}
	}
}

// gemmPacked computes C = A·Bᵀ from packed operands: ap holds ⌈m/4⌉ and bp
// ⌈q/4⌉ k-major 4-wide panels; C is written column-major with leading
// dimension ldc (a multiple of 4 at least ⌈m/4⌉·4, so full 4×4 tiles always
// fit). The microkernel keeps sixteen accumulators live and unrolls the
// shared k loop by two.
func gemmPacked(c []float64, ldc int, ap []float64, m int, bp []float64, q, k int) {
	gemmPackedFrom(c, ldc, ap, m, bp, q, k, false)
}

// gemmPackedTrap is gemmPacked for a trapezoidal target: output rows below
// row index jq are the only ones consumed for output column jq (the scatter
// discards the rest), so tiles entirely above the diagonal are skipped.
func gemmPackedTrap(c []float64, ldc int, ap []float64, m int, bp []float64, q, k int) {
	gemmPackedFrom(c, ldc, ap, m, bp, q, k, true)
}

func gemmPackedFrom(c []float64, ldc int, ap []float64, m int, bp []float64, q, k int, trap bool) {
	k4 := k * 4
	for jq := 0; jq < q; jq += 4 {
		bb := bp[jq*k : jq*k+k4 : jq*k+k4]
		im := 0
		if trap {
			im = jq // tiles with im+4 ≤ jq never reach the diagonal
		}
		if gemmUseAVX {
			for ; im < m; im += 4 {
				gemmTileAVX(&c[jq*ldc+im], ldc, &ap[im*k], &bp[jq*k], k)
			}
			continue
		}
		for ; im < m; im += 4 {
			aa := ap[im*k : im*k+k4 : im*k+k4]
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			o := 0
			for ; o+8 <= k4; o += 8 {
				ar := aa[o : o+8 : o+8]
				br := bb[o : o+8 : o+8]
				a0, a1, a2, a3 := ar[0], ar[1], ar[2], ar[3]
				b0, b1, b2, b3 := br[0], br[1], br[2], br[3]
				c00 += a0 * b0
				c10 += a1 * b0
				c20 += a2 * b0
				c30 += a3 * b0
				c01 += a0 * b1
				c11 += a1 * b1
				c21 += a2 * b1
				c31 += a3 * b1
				c02 += a0 * b2
				c12 += a1 * b2
				c22 += a2 * b2
				c32 += a3 * b2
				c03 += a0 * b3
				c13 += a1 * b3
				c23 += a2 * b3
				c33 += a3 * b3
				a0, a1, a2, a3 = ar[4], ar[5], ar[6], ar[7]
				b0, b1, b2, b3 = br[4], br[5], br[6], br[7]
				c00 += a0 * b0
				c10 += a1 * b0
				c20 += a2 * b0
				c30 += a3 * b0
				c01 += a0 * b1
				c11 += a1 * b1
				c21 += a2 * b1
				c31 += a3 * b1
				c02 += a0 * b2
				c12 += a1 * b2
				c22 += a2 * b2
				c32 += a3 * b2
				c03 += a0 * b3
				c13 += a1 * b3
				c23 += a2 * b3
				c33 += a3 * b3
			}
			if o < k4 {
				ar := aa[o : o+4 : o+4]
				br := bb[o : o+4 : o+4]
				a0, a1, a2, a3 := ar[0], ar[1], ar[2], ar[3]
				b0, b1, b2, b3 := br[0], br[1], br[2], br[3]
				c00 += a0 * b0
				c10 += a1 * b0
				c20 += a2 * b0
				c30 += a3 * b0
				c01 += a0 * b1
				c11 += a1 * b1
				c21 += a2 * b1
				c31 += a3 * b1
				c02 += a0 * b2
				c12 += a1 * b2
				c22 += a2 * b2
				c32 += a3 * b2
				c03 += a0 * b3
				c13 += a1 * b3
				c23 += a2 * b3
				c33 += a3 * b3
			}
			t := jq*ldc + im
			c[t], c[t+1], c[t+2], c[t+3] = c00, c10, c20, c30
			t += ldc
			c[t], c[t+1], c[t+2], c[t+3] = c01, c11, c21, c31
			t += ldc
			c[t], c[t+1], c[t+2], c[t+3] = c02, c12, c22, c32
			t += ldc
			c[t], c[t+1], c[t+2], c[t+3] = c03, c13, c23, c33
		}
	}
}

// factorSupernode assembles and factorises supernode sn: scatter the matrix
// values into the zeroed panel, pull the scheduled rank-k updates from
// descendant supernodes (in the fixed symbolic order), then run the blocked
// dense trapezoidal factorisation. pivTol is the LDLᵀ acceptance threshold
// (unused in Cholesky mode).
func (s *Supernodal) factorSupernode(sn int, c *sparse.CSR, sym *snSym, wk *snWorker, pivTol float64) error {
	f := int(s.sfirst[sn])
	width := int(s.sfirst[sn+1]) - f
	ld := int(s.rx[sn+1] - s.rx[sn])
	rows := s.rowind[s.rx[sn]:s.rx[sn+1]]
	panel := s.panel[s.px[sn]:s.px[sn+1]]

	// Map the supernode's global rows to panel rows. No clearing needed: the
	// numeric phase only ever reads relind at rows of this supernode's
	// structure, all of which are (re)stamped here.
	for i, g := range rows {
		wk.relind[g] = int32(i)
	}

	// Assemble A: row j of the (symmetric, permuted) matrix holds column j's
	// below-diagonal values at its ≥ j entries.
	for i := range panel {
		panel[i] = 0
	}
	for jj := 0; jj < width; jj++ {
		j := f + jj
		cols, vals := c.RowView(j)
		col := panel[jj*ld : (jj+1)*ld]
		for t, i := range cols {
			if i >= j {
				col[wk.relind[i]] = vals[t]
			}
		}
	}

	// Pull the scheduled updates, in their fixed (ascending-descendant) order.
	for _, u := range sym.upd[sn] {
		s.applyUpdate(sn, u, wk)
	}

	// Blocked dense trapezoidal factorisation of the panel.
	if s.mode == ModeCholesky {
		return s.panelCholesky(panel, width, ld, f, wk)
	}
	return s.panelLDLT(panel, width, ld, f, pivTol, wk)
}

// applyUpdate subtracts descendant d's rank-k contribution from the target
// supernode's panel: C = D[lo:ldd, :] · W[lo:hi, :]ᵀ with W the (D-scaled in
// LDLᵀ mode) rows of d falling inside the target's columns. W packs once,
// the row range streams through in packed chunks, and each chunk's product
// scatters through relind.
func (s *Supernodal) applyUpdate(sn int, u snUpd, wk *snWorker) {
	d := int(u.d)
	lo, hi := int(u.lo), int(u.hi)
	ldd := int(s.rx[d+1] - s.rx[d])
	k := int(s.sfirst[d+1] - s.sfirst[d])
	dpanel := s.panel[s.px[d]:s.px[d+1]]
	drows := s.rowind[s.rx[d]:s.rx[d+1]]
	q := hi - lo

	var scale []float64
	if s.mode == ModeLDLT {
		scale = s.d[s.sfirst[d]:s.sfirst[d+1]]
	}
	packPanels(wk.bbuf, dpanel, ldd, lo, q, k, scale)

	fTarget := int(s.sfirst[sn])
	ldt := int(s.rx[sn+1] - s.rx[sn])
	tpanel := s.panel[s.px[sn]:s.px[sn+1]]

	mAll := ldd - lo
	for ii := 0; ii < mAll; ii += snChunkRows {
		mc := mAll - ii
		if mc > snChunkRows {
			mc = snChunkRows
		}
		mc4 := (mc + 3) &^ 3
		packPanels(wk.abuf, dpanel, ldd, lo+ii, mc, k, nil)
		if ii == 0 {
			// The diagonal lives in the first chunk (q ≤ snMaxWidth <
			// snChunkRows): skip the above-diagonal tiles the scatter would
			// discard anyway.
			gemmPackedTrap(wk.cbuf, mc4, wk.abuf, mc, wk.bbuf, q, k)
		} else {
			gemmPacked(wk.cbuf, mc4, wk.abuf, mc, wk.bbuf, q, k)
		}
		// Scatter-subtract the (lower-trapezoid part of the) chunk.
		for t := 0; t < q; t++ {
			gcol := int(drows[lo+t]) - fTarget
			dst := tpanel[gcol*ldt : (gcol+1)*ldt]
			src := wk.cbuf[t*mc4 : t*mc4+mc]
			iStart := t - ii
			if iStart < 0 {
				iStart = 0
			}
			for i := iStart; i < mc; i++ {
				dst[wk.relind[drows[lo+ii+i]]] -= src[i]
			}
		}
	}
}

// panelRightUpdate subtracts the just-factorised strip's rank-wb contribution
// from the rest of its own panel: columns [r0, width) and rows [r0, ld) lose
// A·(D·)Bᵀ where both operands are rows of the strip (columns [kb, kb+wb)).
// The target is the panel itself — contiguous columns, no scatter indices.
func (s *Supernodal) panelRightUpdate(panel []float64, width, ld, kb, wb int, scale []float64, wk *snWorker) {
	r0 := kb + wb
	q := width - r0
	if q <= 0 {
		return
	}
	strip := panel[kb*ld:]
	packPanels(wk.bbuf, strip, ld, r0, q, wb, scale)
	mAll := ld - r0
	for ii := 0; ii < mAll; ii += snChunkRows {
		mc := mAll - ii
		if mc > snChunkRows {
			mc = snChunkRows
		}
		mc4 := (mc + 3) &^ 3
		packPanels(wk.abuf, strip, ld, r0+ii, mc, wb, nil)
		if ii == 0 {
			gemmPackedTrap(wk.cbuf, mc4, wk.abuf, mc, wk.bbuf, q, wb)
		} else {
			gemmPacked(wk.cbuf, mc4, wk.abuf, mc, wk.bbuf, q, wb)
		}
		for t := 0; t < q; t++ {
			dst := panel[(r0+t)*ld:]
			src := wk.cbuf[t*mc4 : t*mc4+mc]
			iStart := t - ii
			if iStart < 0 {
				iStart = 0
			}
			for i := iStart; i < mc; i++ {
				dst[r0+ii+i] -= src[i]
			}
		}
	}
}

// panelCholesky factorises the assembled trapezoidal panel in place: the top
// width×width block becomes L11 (lower) and the rows below become
// L21 = A21·L11⁻ᵀ — the dense triangular solve fused into the column sweep.
// Columns factorise in strips of snPanelStrip; each strip's effect on the
// columns to its right goes through the packed rank-k kernel. f is the
// supernode's first (permuted) column, for error reporting only.
func (s *Supernodal) panelCholesky(panel []float64, width, ld, f int, wk *snWorker) error {
	for kb := 0; kb < width; kb += snPanelStrip {
		wb := width - kb
		if wb > snPanelStrip {
			wb = snPanelStrip
		}
		for kk := kb; kk < kb+wb; kk++ {
			col := panel[kk*ld : (kk+1)*ld]
			dk := col[kk]
			if s.snPivotBad(dk, 0) {
				return s.snPivotError(f+kk, dk, 0)
			}
			dk = math.Sqrt(dk)
			col[kk] = dk
			inv := 1 / dk
			for i := kk + 1; i < ld; i++ {
				col[i] *= inv
			}
			// Rank-1 update of the rest of the strip, two columns at a time.
			jj := kk + 1
			for ; jj+2 <= kb+wb; jj += 2 {
				l0, l1 := col[jj], col[jj+1]
				c0 := panel[jj*ld : (jj+1)*ld]
				c1 := panel[(jj+1)*ld : (jj+2)*ld]
				c0[jj] -= l0 * l0
				for i := jj + 1; i < ld; i++ {
					v := col[i]
					c0[i] -= v * l0
					c1[i] -= v * l1
				}
			}
			for ; jj < kb+wb; jj++ {
				ljk := col[jj]
				cj := panel[jj*ld : (jj+1)*ld]
				for i := jj; i < ld; i++ {
					cj[i] -= col[i] * ljk
				}
			}
		}
		s.panelRightUpdate(panel, width, ld, kb, wb, nil, wk)
	}
	return nil
}

// panelLDLT factorises the assembled trapezoidal panel in place as L·D·Lᵀ:
// unit-lower L with the pivot stored both in s.d and in the (otherwise
// unused) diagonal slot. Same strip blocking as panelCholesky; the strip's
// right-update scales by the strip's pivots. f is the supernode's first
// (permuted) column.
func (s *Supernodal) panelLDLT(panel []float64, width, ld, f int, pivTol float64, wk *snWorker) error {
	for kb := 0; kb < width; kb += snPanelStrip {
		wb := width - kb
		if wb > snPanelStrip {
			wb = snPanelStrip
		}
		for kk := kb; kk < kb+wb; kk++ {
			col := panel[kk*ld : (kk+1)*ld]
			dk := col[kk]
			if s.snPivotBad(dk, pivTol) {
				return s.snPivotError(f+kk, dk, pivTol)
			}
			s.d[f+kk] = dk
			inv := 1 / dk
			// Update the rest of the strip with the unscaled column (which
			// holds L(i,kk)·dk), then scale the column to L values.
			for jj := kk + 1; jj < kb+wb; jj++ {
				cjk := col[jj] * inv // L(jj, kk)
				if cjk == 0 {
					continue
				}
				cj := panel[jj*ld : (jj+1)*ld]
				for i := jj; i < ld; i++ {
					cj[i] -= col[i] * cjk
				}
			}
			for i := kk + 1; i < ld; i++ {
				col[i] *= inv
			}
		}
		s.panelRightUpdate(panel, width, ld, kb, wb, s.d[f+kb:f+kb+wb], wk)
	}
	return nil
}
