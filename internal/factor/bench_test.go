package factor

import (
	"fmt"
	"testing"

	"repro/internal/sparse"
)

// Benchmarks of the factorisation subsystem hot paths, sized to the largest
// blocks of the E6 scale-sparse experiment: the 128×128 Poisson grid
// (16384 unknowns, the largest quick size) and the 128×128 saddle system
// (16512 unknowns, the non-SPD leg). Run with:
//
//	go test ./internal/factor -bench . -benchtime 10x
//
// BenchmarkAMDOrdering measures ordering time alone — the supervariable
// detection and mass elimination exist to shrink exactly this number on the
// largest E6 blocks.

func benchSystems() map[string]sparse.System {
	return map[string]sparse.System{
		"poisson-128": sparse.Poisson2D(128, 128, 0.05),
		"saddle-128":  sparse.SaddlePoisson2D(128, 128, 1e-2),
	}
}

func BenchmarkAMDOrdering(b *testing.B) {
	for name, sys := range benchSystems() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if p := AMD(sys.A); len(p) != sys.Dim() {
					b.Fatal("bad permutation")
				}
			}
		})
	}
}

func BenchmarkFactorScalarVsSupernodal(b *testing.B) {
	grid := sparse.Poisson2D(128, 128, 0.05)
	saddle := sparse.SaddlePoisson2D(128, 128, 1e-2)
	cases := []struct {
		name string
		run  func() error
	}{
		{"scalar-cholesky/poisson-128", func() error { _, err := NewCholesky(grid.A, OrderAuto); return err }},
		{"supernodal-cholesky/poisson-128", func() error { _, err := NewSupernodal(grid.A, OrderAuto, ModeCholesky); return err }},
		{"scalar-ldlt/saddle-128", func() error { _, err := NewLDLT(saddle.A, OrderAuto); return err }},
		{"supernodal-ldlt/saddle-128", func() error { _, err := NewSupernodal(saddle.A, OrderAuto, ModeLDLT); return err }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := tc.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolve(b *testing.B) {
	grid := sparse.Poisson2D(128, 128, 0.05)
	for _, backend := range []string{SparseCholesky, SparseSupernodal} {
		s, err := New(backend, grid.A)
		if err != nil {
			b.Fatal(err)
		}
		x := sparse.NewVec(grid.Dim())
		b.Run(fmt.Sprintf("%s/poisson-128", backend), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.SolveTo(x, grid.B)
			}
		})
	}
}
