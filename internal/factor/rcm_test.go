package factor

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// shuffledGrid returns a grid Laplacian whose vertices have been relabelled by
// a random permutation, destroying the natural banded order.
func shuffledGrid(nx, ny int, seed int64) *sparse.CSR {
	sys := sparse.Poisson2D(nx, ny, 0.05)
	n := sys.Dim()
	rng := rand.New(rand.NewSource(seed))
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return PermuteSym(sys.A, p)
}

func bandwidth(a *sparse.CSR) int {
	bw := 0
	a.Each(func(i, j int, v float64) {
		if d := i - j; d > bw {
			bw = d
		} else if -d > bw {
			bw = -d
		}
	})
	return bw
}

func TestRCMIsPermutation(t *testing.T) {
	a := shuffledGrid(9, 11, 3)
	p := RCM(a)
	if len(p) != a.Rows() {
		t.Fatalf("RCM returned %d indices for %d vertices", len(p), a.Rows())
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPermInverseRoundTrip(t *testing.T) {
	a := shuffledGrid(7, 8, 5)
	p := RCM(a)
	inv := p.Inverse()
	for i := range p {
		if inv[p[i]] != i || p[inv[i]] != i {
			t.Fatalf("inverse round trip fails at %d", i)
		}
	}
	// Applying p and then inv relabels new->old->new — the identity.
	c := PermuteSym(PermuteSym(a, p), inv)
	if !c.EqualApprox(a, 0) {
		t.Error("PermuteSym round trip does not restore the matrix")
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	a := shuffledGrid(13, 13, 9)
	before := bandwidth(a)
	p := RCM(a)
	after := bandwidth(PermuteSym(a, p))
	if after >= before {
		t.Errorf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
	// On a 13x13 grid the optimal bandwidth is ~13; RCM should get close, and
	// in any case far below the ~n bandwidth of a random labelling.
	if after > 40 {
		t.Errorf("RCM bandwidth %d is far from the grid's natural %d", after, 13)
	}
}

func TestRCMDeterministic(t *testing.T) {
	a := shuffledGrid(10, 10, 21)
	p1, p2 := RCM(a), RCM(a)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("RCM is not deterministic at %d", i)
		}
	}
}

func TestRCMDisconnectedComponents(t *testing.T) {
	// Two disjoint paths: RCM must order every vertex exactly once.
	coo := sparse.NewCOO(6, 6)
	for i := 0; i < 6; i++ {
		coo.Add(i, i, 2)
	}
	coo.AddSym(0, 1, -1)
	coo.AddSym(1, 2, -1)
	coo.AddSym(3, 4, -1)
	coo.AddSym(4, 5, -1)
	a := coo.ToCSR()
	p := RCM(a)
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	// The factorisation must work across components too.
	s, err := NewCholesky(a, OrderRCM)
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.Vec{1, 2, 3, 4, 5, 6}
	x := s.Solve(b)
	if r := a.Residual(x, b).Norm2() / b.Norm2(); r > 1e-12 {
		t.Errorf("disconnected solve relative residual %g", r)
	}
}
