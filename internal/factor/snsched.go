package factor

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/sparse"
)

// Parallel elimination-subtree scheduling. The postordered supernodal
// elimination tree makes every subtree a contiguous supernode range, and the
// left-looking numeric phase makes every supernode depend only on supernodes
// inside its own subtree — so disjoint subtrees factorise concurrently with
// zero synchronisation beyond task dispatch. The scheduler cuts the tree at a
// flop threshold (a level set in work, not depth): maximal subtrees whose
// estimated work fits under the threshold become tasks for a bounded worker
// pool, everything above the cut (the top of the tree, where dependencies
// concentrate) runs sequentially afterwards. Small problems skip the pool
// entirely. Numerics are byte-identical for every GOMAXPROCS because each
// supernode's update order is fixed by the symbolic phase, not by execution
// order.
const (
	// snMaxWorkers bounds the worker pool regardless of GOMAXPROCS.
	snMaxWorkers = 8
	// snParallelMinFlops is the estimated factorisation cost under which
	// spawning workers costs more than it saves.
	snParallelMinFlops = 8e6
	// snTaskFanout targets this many tasks per worker so uneven subtrees
	// still balance.
	snTaskFanout = 4
)

// snLevels computes the level sets of the supernodal elimination tree for the
// level-scheduled triangular solve: level(s) = 0 for leaves, otherwise
// 1 + max over children. Supernodes on one level are pairwise unrelated in
// the tree, so their forward (gather-form) and backward steps touch disjoint
// solution rows and run concurrently without synchronisation; the forward
// sweep walks levels ascending, the backward sweep descending. levList holds
// the supernodes grouped by level (ascending within each level, so the
// traversal order is deterministic), levPtr[l]:levPtr[l+1] delimits level l,
// and levWork[l] estimates the level's solve flops — the dispatcher runs
// cheap levels inline rather than paying goroutine handoff for them.
func snLevels(sym *snSym) (levPtr, levList []int32, levWork []float64) {
	ns := sym.ns
	if ns == 0 {
		return []int32{0}, nil, nil
	}
	lev := make([]int32, ns)
	maxLev := int32(0)
	for s := 0; s < ns; s++ {
		// Children precede parents in the postorder, so lev[s] is final here.
		if lev[s] > maxLev {
			maxLev = lev[s]
		}
		if p := sym.sparent[s]; p != -1 {
			if l := lev[s] + 1; l > lev[p] {
				lev[p] = l
			}
		}
	}
	nlev := int(maxLev) + 1
	levPtr = make([]int32, nlev+1)
	levWork = make([]float64, nlev)
	for s := 0; s < ns; s++ {
		levPtr[lev[s]+1]++
		w := float64(sym.sfirst[s+1] - sym.sfirst[s])
		ld := float64(sym.rx[s+1] - sym.rx[s])
		work := 2 * w * ld // diagonal-block solve + rectangular sweep, fwd+bwd
		for _, u := range sym.upd[s] {
			wd := float64(sym.sfirst[u.d+1] - sym.sfirst[u.d])
			work += 2 * float64(u.hi-u.lo) * wd
		}
		levWork[lev[s]] += work
	}
	for l := 0; l < nlev; l++ {
		levPtr[l+1] += levPtr[l]
	}
	levList = make([]int32, ns)
	fill := make([]int32, nlev)
	copy(fill, levPtr[:nlev])
	for s := 0; s < ns; s++ {
		levList[fill[lev[s]]] = int32(s)
		fill[lev[s]]++
	}
	return levPtr, levList, levWork
}

// snTask is one independent elimination subtree: the contiguous supernode
// range [lo, hi) and its estimated numeric cost (the dispatch priority).
type snTask struct {
	lo, hi int32
	flops  float64
}

// scheduleTasks partitions the supernodes into independent subtree tasks and
// the sequential top. It returns a nil task list when the factorisation
// should run sequentially (too little work, or no way to cut at least two
// tasks).
func scheduleTasks(sym *snSym, workers int) (tasks []snTask, top []int32) {
	ns := sym.ns
	if workers <= 1 || ns < 2 {
		return nil, nil
	}
	// Subtree flops and sizes, accumulated child-to-parent (children precede
	// parents in the postorder).
	subFlops := make([]float64, ns)
	subSize := make([]int32, ns)
	total := 0.0
	for s := 0; s < ns; s++ {
		subFlops[s] += sym.flops[s]
		subSize[s]++
		total += sym.flops[s]
		if p := sym.sparent[s]; p != -1 {
			subFlops[p] += subFlops[s]
			subSize[p] += subSize[s]
		}
	}
	if total < snParallelMinFlops {
		return nil, nil
	}
	threshold := total / float64(snTaskFanout*workers)

	// Task roots: maximal subtrees under the threshold.
	inTask := make([]bool, ns)
	for s := 0; s < ns; s++ {
		if inTask[s] || subFlops[s] > threshold {
			continue
		}
		if p := sym.sparent[s]; p != -1 && subFlops[p] <= threshold {
			continue // the parent's subtree is also under threshold; take it instead
		}
		lo := int32(s) - subSize[s] + 1
		tasks = append(tasks, snTask{lo: lo, hi: int32(s) + 1, flops: subFlops[s]})
		for t := lo; t <= int32(s); t++ {
			inTask[t] = true
		}
	}
	if len(tasks) < 2 {
		return nil, nil
	}
	for s := 0; s < ns; s++ {
		if !inTask[s] {
			top = append(top, int32(s))
		}
	}
	return tasks, top
}

// factorAll runs the numeric phase: assemble and factorise every supernode,
// concurrently over independent subtrees when the scheduler cut some, then
// the sequential top. The first error in task order (which equals ascending
// supernode order, making the reported pivot deterministic) wins.
func (s *Supernodal) factorAll(c *sparse.CSR, sym *snSym) error {
	pivTol := 0.0
	if s.mode == ModeLDLT {
		pivTol = ldltPivotRelTol * c.MaxAbs()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > snMaxWorkers {
		workers = snMaxWorkers
	}
	tasks, top := scheduleTasks(sym, workers)
	s.tasks, s.workers = len(tasks), 1

	if len(tasks) == 0 {
		return s.factorSequential(c, sym, pivTol)
	}

	if workers > len(tasks) {
		workers = len(tasks)
	}
	s.workers = workers
	// Dispatch the heaviest subtrees first: the bushy trees nested dissection
	// produces have a few large sibling subtrees plus a tail of small ones,
	// and largest-first keeps the tail available to backfill whichever worker
	// finishes early. Execution order cannot change the numerics (each task's
	// update order is fixed symbolically and tasks share no supernodes), so
	// this is pure load balance.
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := tasks[order[a]], tasks[order[b]]
		if ta.flops != tb.flops {
			return ta.flops > tb.flops
		}
		return ta.lo < tb.lo
	})
	errs := make([]error, len(tasks))
	next := make(chan int, len(tasks))
	for _, t := range order {
		next <- t
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := newSnWorker(s.n)
			for t := range next {
				task := tasks[t]
				for sn := task.lo; sn < task.hi; sn++ {
					if err := s.factorSupernode(int(sn), c, sym, wk, pivTol); err != nil {
						errs[t] = err
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// A subtree hit a bad pivot. Re-run sequentially so the reported
			// pivot is the same one every GOMAXPROCS setting reports (the
			// failure path is cold: the auto policy immediately retries in
			// LDLᵀ mode or falls back to dense LU).
			seqErr := s.factorSequential(c, sym, pivTol)
			if seqErr != nil {
				return seqErr
			}
			return err // unreachable: the same supernode fails deterministically
		}
	}
	wk := newSnWorker(s.n)
	for _, sn := range top {
		if err := s.factorSupernode(int(sn), c, sym, wk, pivTol); err != nil {
			return err
		}
	}
	return nil
}

// factorSequential is the plain ascending-order numeric pass: every supernode
// in turn on one scratch, stopping at the first bad pivot.
func (s *Supernodal) factorSequential(c *sparse.CSR, sym *snSym, pivTol float64) error {
	wk := newSnWorker(s.n)
	for sn := 0; sn < s.ns; sn++ {
		if err := s.factorSupernode(sn, c, sym, wk, pivTol); err != nil {
			return err
		}
	}
	return nil
}
