package factor

import (
	"testing"

	"repro/internal/sparse"
)

// TestResolveOrderingCountsOffDiagonalDegree is the regression test of the
// degree-policy bugfix: the stencil degree bound must count off-diagonal
// entries only, so the 5-point (off-degree 4) and 7-point (off-degree 6)
// stencils route to the grid orderings with honest headroom under the
// bound of 8 — RCM below autoOrderNDMinDim unknowns, nested dissection at
// and above it.
func TestResolveOrderingCountsOffDiagonalDegree(t *testing.T) {
	cases := []struct {
		name string
		a    *sparse.CSR
		want Ordering
	}{
		{"5pt-small", sparse.Poisson2D(24, 24, 0.05).A, OrderRCM},
		{"7pt-small", sparse.Poisson3D(9, 9, 9, 0.05).A, OrderRCM},
		{"5pt-large", sparse.Poisson2D(64, 64, 0.05).A, OrderND},
		{"7pt-large", sparse.Poisson3D(16, 16, 16, 0.05).A, OrderND},
		{"saddle-irregular", sparse.SaddlePoisson2D(20, 20, 1e-2).A, OrderAMD},
		{"random-irregular", sparse.RandomSPD(300, 0.06, 4).A, OrderAMD},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := resolveOrdering(tc.a, OrderAuto); got != tc.want {
				t.Errorf("OrderAuto on %s (n=%d) resolved to %v, want %v", tc.name, tc.a.Rows(), got, tc.want)
			}
			// Concrete orderings pass through untouched.
			for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD, OrderND} {
				if got := resolveOrdering(tc.a, ord); got != ord {
					t.Errorf("explicit %v resolved to %v", ord, got)
				}
			}
		})
	}
}

// TestResolveOrderingDegreeBoundary pins the exact boundary: a row with
// autoOrderMaxGridDegree off-diagonal entries stays on the grid route, one
// more tips the matrix to AMD — independent of whether diagonals are stored.
func TestResolveOrderingDegreeBoundary(t *testing.T) {
	star := func(leaves int, diag bool) *sparse.CSR {
		n := leaves + 1
		coo := sparse.NewCOO(n, n)
		for i := 0; i < n && diag; i++ {
			coo.Add(i, i, float64(leaves)+1)
		}
		for l := 1; l <= leaves; l++ {
			coo.AddSym(0, l, -1)
		}
		return coo.ToCSR()
	}
	for _, diag := range []bool{true, false} {
		if got := resolveOrdering(star(autoOrderMaxGridDegree, diag), OrderAuto); got != OrderRCM {
			t.Errorf("degree %d (diag=%v) resolved to %v, want rcm", autoOrderMaxGridDegree, diag, got)
		}
		if got := resolveOrdering(star(autoOrderMaxGridDegree+1, diag), OrderAuto); got != OrderAMD {
			t.Errorf("degree %d (diag=%v) resolved to %v, want amd", autoOrderMaxGridDegree+1, diag, got)
		}
	}
}

// TestParseOrderingRoundTrip checks every ordering parses back from its
// String name and unknown names fail.
func TestParseOrderingRoundTrip(t *testing.T) {
	for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD, OrderND, OrderAuto} {
		got, err := ParseOrdering(ord.String())
		if err != nil || got != ord {
			t.Errorf("ParseOrdering(%q) = %v, %v", ord.String(), got, err)
		}
	}
	if _, err := ParseOrdering("metis"); err == nil {
		t.Error("unknown ordering name parsed")
	}
}

// TestSetDefaultOrderingSteersRegisteredBackends checks the CLI hook: after
// SetDefaultOrdering(OrderND) the registry backends factorise under ND, and
// the default restores to auto.
func TestSetDefaultOrderingSteersRegisteredBackends(t *testing.T) {
	if DefaultOrdering() != OrderAuto {
		t.Fatalf("default ordering is %v at test start, want auto", DefaultOrdering())
	}
	if err := SetDefaultOrdering(OrderND); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetDefaultOrdering(OrderAuto); err != nil {
			t.Fatal(err)
		}
	}()
	sys := sparse.Poisson2D(24, 24, 0.05)
	s, err := New(SparseCholesky, sys.A)
	if err != nil {
		t.Fatal(err)
	}
	if ord := s.(*Cholesky).Ordering(); ord != OrderND {
		t.Errorf("sparse-cholesky factorised under %v after SetDefaultOrdering(nd)", ord)
	}
	sn, err := New(SparseSupernodal, sys.A)
	if err != nil {
		t.Fatal(err)
	}
	if ord := sn.(*Supernodal).Ordering(); ord != OrderND {
		t.Errorf("sparse-supernodal factorised under %v after SetDefaultOrdering(nd)", ord)
	}
	if err := SetDefaultOrdering(Ordering(99)); err == nil {
		t.Error("SetDefaultOrdering accepted an unknown ordering")
	}
}
