package factor

import (
	"errors"
	"testing"

	"repro/internal/sparse"
)

func TestBackendsRegistered(t *testing.T) {
	for _, name := range []string{Auto, DenseCholesky, DenseLU, SparseCholesky, SparseLDLT} {
		if !Known(name) {
			t.Errorf("backend %q is not registered", name)
		}
	}
	if Known("no-such-backend") {
		t.Error("Known accepted an unregistered backend")
	}
	if _, err := New("no-such-backend", sparse.Identity(3)); err == nil {
		t.Error("New accepted an unregistered backend")
	}
	if got := Default(); got != Auto {
		t.Errorf("Default() = %q, want %q", got, Auto)
	}
	if err := SetDefault("no-such-backend"); err == nil {
		t.Error("SetDefault accepted an unregistered backend")
	}
}

// TestAutoFallsBackToLUOnNonSPD is the regression test for the deduplicated
// Cholesky → ErrNotPositiveDefinite → LU fallback: a symmetric indefinite
// (but nonsingular) local block must still be factorised and solved.
func TestAutoFallsBackToLUOnNonSPD(t *testing.T) {
	// Symmetric, nonsingular, indefinite (eigenvalues 3 and -1).
	a := sparse.NewCSRFromDense([][]float64{
		{1, 2},
		{2, 1},
	}, 0)
	s, err := New(Auto, a)
	if err != nil {
		t.Fatalf("Auto on an indefinite block: %v", err)
	}
	if s.Backend() != DenseLU {
		t.Errorf("Auto picked %q for an indefinite block, want %q", s.Backend(), DenseLU)
	}
	b := sparse.Vec{5, 4}
	x := Solve(s, b)
	// Exact solution of [[1,2],[2,1]] x = [5,4] is x = [1, 2].
	if x.MaxAbsDiff(sparse.Vec{1, 2}) > 1e-12 {
		t.Errorf("LU fallback solve got %v, want [1 2]", x)
	}
}

func TestAutoPicksDenseForSmallSparseForLarge(t *testing.T) {
	small := sparse.Poisson2D(5, 5, 0.05)
	s, err := New(Auto, small.A)
	if err != nil {
		t.Fatalf("Auto(small): %v", err)
	}
	if s.Backend() != DenseCholesky {
		t.Errorf("Auto picked %q for n=25, want %q", s.Backend(), DenseCholesky)
	}
	large := sparse.Poisson2D(20, 20, 0.05) // n=400 >= autoSparseMinDim, density ~1%
	s, err = New(Auto, large.A)
	if err != nil {
		t.Fatalf("Auto(large): %v", err)
	}
	if s.Backend() != SparseCholesky {
		t.Errorf("Auto picked %q for n=400 sparse, want %q", s.Backend(), SparseCholesky)
	}
	for _, sys := range []sparse.System{small, large} {
		sol, err := New(Auto, sys.A)
		if err != nil {
			t.Fatal(err)
		}
		x := sparse.NewVec(sys.Dim())
		sol.SolveTo(x, sys.B)
		if r := sys.A.Residual(x, sys.B).Norm2() / sys.B.Norm2(); r > 1e-10 {
			t.Errorf("auto solve of %s has relative residual %g", sys.Name, r)
		}
	}
}

// TestDenseGuard pins the clean failure the E6 experiment demonstrates: a
// dense backend refuses (without allocating) a matrix beyond MaxDenseBytes,
// while the auto policy routes the same matrix to the sparse backend.
func TestDenseGuard(t *testing.T) {
	// A sparse identity far beyond the dense cap is cheap to build.
	n := 20000
	if DenseFeasible(n) == nil {
		t.Skipf("MaxDenseBytes %d admits n=%d; guard not exercised", MaxDenseBytes, n)
	}
	a := sparse.Identity(n)
	for _, backend := range []string{DenseCholesky, DenseLU} {
		_, err := New(backend, a)
		if !errors.Is(err, ErrDenseTooLarge) {
			t.Errorf("%s on n=%d: err = %v, want ErrDenseTooLarge", backend, n, err)
		}
	}
	s, err := New(Auto, a)
	if err != nil {
		t.Fatalf("Auto on huge sparse identity: %v", err)
	}
	if s.Backend() != SparseSupernodal {
		t.Errorf("Auto picked %q beyond the dense cap, want %q", s.Backend(), SparseSupernodal)
	}
	b := sparse.NewVec(n)
	b.Fill(3)
	x := Solve(s, b)
	if x.MaxAbsDiff(b) > 1e-14 {
		t.Error("identity solve is not the right-hand side")
	}
}

// TestAutoRoutesLargeNonSPDToSparseLDLT is the regression test for the bug
// where the auto policy treated ErrNotPositiveDefinite from the sparse
// Cholesky exactly like the dense one — falling straight to dense LU — so a
// block that was both large and merely SNND/indefinite died at
// ErrDenseTooLarge. With the chain sparse-Cholesky → sparse-LDLᵀ → dense LU
// the same block factorises sparsely.
func TestAutoRoutesLargeNonSPDToSparseLDLT(t *testing.T) {
	// Shrink the dense cap so "beyond the dense memory wall" is cheap to
	// reach: with a 1 MiB cap, DenseFeasible fails above n = 209.
	saved := MaxDenseBytes
	MaxDenseBytes = 1 << 20
	defer func() { MaxDenseBytes = saved }()

	sys := sparse.SaddlePoisson2D(20, 20, 1e-2) // n = 420, indefinite
	n := sys.Dim()
	if DenseFeasible(n) == nil {
		t.Fatalf("test setup: n=%d should be past the lowered dense cap", n)
	}
	if _, err := New(SparseCholesky, sys.A); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("sparse Cholesky on the saddle system: %v, want ErrNotPositiveDefinite", err)
	}
	// The old chain's landing spot, dense LU, is infeasible at this cap …
	if _, err := New(DenseLU, sys.A); !errors.Is(err, ErrDenseTooLarge) {
		t.Fatalf("dense LU at the lowered cap: %v, want ErrDenseTooLarge", err)
	}
	// … but auto now routes to the sparse LDLᵀ and solves.
	s, err := New(Auto, sys.A)
	if err != nil {
		t.Fatalf("Auto on a large non-SPD block: %v", err)
	}
	if s.Backend() != SparseLDLT {
		t.Errorf("Auto picked %q, want %q", s.Backend(), SparseLDLT)
	}
	x := Solve(s, sys.B)
	if r := sys.A.Residual(x, sys.B).Norm2() / sys.B.Norm2(); r > 1e-10 {
		t.Errorf("auto LDLT solve has relative residual %g", r)
	}
}

// TestAutoFallsThroughToDenseLUWhenLDLTFails covers the last link of the
// chain: a singular-to-LDLT block (zero diagonal pivots that 1×1 pivoting
// cannot pass) still reaches dense LU when that is feasible.
func TestAutoFallsThroughToDenseLUWhenLDLTFails(t *testing.T) {
	// An anti-diagonal permutation-like matrix: symmetric, nonsingular, but
	// every leading principal minor up to n/2 is singular, so un-pivoted LDLᵀ
	// meets a zero pivot immediately. Sized past autoSparseMinDim with low
	// density so the auto policy takes the sparse path.
	n := 2 * autoSparseMinDim
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n/2; i++ {
		coo.AddSym(i, n-1-i, 1)
	}
	a := coo.ToCSR()
	if _, err := New(SparseLDLT, a); !errors.Is(err, ErrSingular) {
		t.Fatalf("sparse LDLT on the anti-diagonal: %v, want ErrSingular", err)
	}
	s, err := New(Auto, a)
	if err != nil {
		t.Fatalf("Auto on the anti-diagonal: %v", err)
	}
	if s.Backend() != DenseLU {
		t.Errorf("Auto picked %q, want %q", s.Backend(), DenseLU)
	}
	b := sparse.NewVec(n)
	b.Fill(2)
	x := Solve(s, b)
	if x.MaxAbsDiff(b) > 1e-12 { // the anti-diagonal is an involution
		t.Error("anti-diagonal solve should mirror the right-hand side")
	}
}

func TestSolverDims(t *testing.T) {
	sys := sparse.Poisson2D(7, 6, 0.05)
	for _, backend := range []string{DenseCholesky, DenseLU, SparseCholesky, SparseLDLT, Auto} {
		s, err := New(backend, sys.A)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if s.Dim() != sys.Dim() {
			t.Errorf("%s: Dim() = %d, want %d", backend, s.Dim(), sys.Dim())
		}
	}
}
