package factor

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sparse"
)

// TestCacheHitMiss pins the basic contract: the first GetOrFactor factors,
// the second returns the identical solver instance without refactoring.
func TestCacheHitMiss(t *testing.T) {
	sys := sparse.Poisson2D(16, 16, 0.05)
	c := NewCache(0) // unbounded
	s1, hit, err := c.GetOrFactor(SparseCholesky, sys.A)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold cache reported a hit")
	}
	s2, hit, err := c.GetOrFactor(SparseCholesky, sys.A)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("warm cache reported a miss")
	}
	if s1 != s2 {
		t.Fatal("hit returned a different solver instance")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.UsedBytes <= 0 {
		t.Fatalf("UsedBytes = %d, want > 0", st.UsedBytes)
	}
}

// TestCacheKeying pins the keying rules the issue calls out: the same
// pattern with different values MUST miss, a different backend on the same
// matrix MUST miss, and a value-identical copy of the matrix MUST hit.
func TestCacheKeying(t *testing.T) {
	sys := sparse.Poisson2D(12, 12, 0.05)
	c := NewCache(0)
	if _, hit, err := c.GetOrFactor(SparseCholesky, sys.A); err != nil || hit {
		t.Fatalf("seed insert: hit=%v err=%v", hit, err)
	}

	// Same pattern, one value perturbed: must miss (and insert a new entry).
	bumped := sparse.Poisson2D(12, 12, 0.06)
	if _, hit, err := c.GetOrFactor(SparseCholesky, bumped.A); err != nil || hit {
		t.Fatalf("same-pattern different-values: hit=%v err=%v, want miss", hit, err)
	}

	// Different backend, same matrix: must miss.
	if _, hit, err := c.GetOrFactor(SparseSupernodal, sys.A); err != nil || hit {
		t.Fatalf("different backend: hit=%v err=%v, want miss", hit, err)
	}

	// A freshly built but value-identical matrix: must hit.
	clone := sparse.Poisson2D(12, 12, 0.05)
	if _, hit, err := c.GetOrFactor(SparseCholesky, clone.A); err != nil || !hit {
		t.Fatalf("value-identical rebuild: hit=%v err=%v, want hit", hit, err)
	}

	if st := c.Stats(); st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
}

// TestCacheEviction pins the LRU byte budget: with room for roughly two of
// three factors, the least-recently-used entry is evicted, and touching an
// entry protects it.
func TestCacheEviction(t *testing.T) {
	sysA := sparse.Poisson2D(20, 20, 0.05)
	sysB := sparse.Poisson2D(20, 20, 0.07)
	sysC := sparse.Poisson2D(20, 20, 0.09)

	// Measure one entry's footprint with an unbounded cache first.
	probe := NewCache(0)
	if _, _, err := probe.GetOrFactor(SparseCholesky, sysA.A); err != nil {
		t.Fatal(err)
	}
	per := probe.Stats().UsedBytes

	c := NewCache(2*per + per/2) // fits two entries, not three
	for _, a := range []*sparse.CSR{sysA.A, sysB.A} {
		if _, _, err := c.GetOrFactor(SparseCholesky, a); err != nil {
			t.Fatal(err)
		}
	}
	// Touch A so B becomes the LRU victim.
	if _, hit, _ := c.GetOrFactor(SparseCholesky, sysA.A); !hit {
		t.Fatal("A should still be cached")
	}
	if _, _, err := c.GetOrFactor(SparseCholesky, sysC.A); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget holding %d bytes/entry", 2*per+per/2, per)
	}
	if st.UsedBytes > 2*per+per/2 {
		t.Fatalf("used %d bytes exceeds budget %d", st.UsedBytes, 2*per+per/2)
	}
	if _, hit, _ := c.GetOrFactor(SparseCholesky, sysA.A); !hit {
		t.Fatal("recently-touched A was evicted before LRU B")
	}
	if _, hit, _ := c.GetOrFactor(SparseCholesky, sysC.A); !hit {
		t.Fatal("newest entry C was evicted")
	}
}

// TestCacheTinyBudget pins the keep-one rule: a budget smaller than a single
// factor still caches (and serves) that one factor rather than thrashing.
func TestCacheTinyBudget(t *testing.T) {
	sys := sparse.Poisson2D(16, 16, 0.05)
	c := NewCache(1) // absurdly small
	if _, hit, err := c.GetOrFactor(SparseCholesky, sys.A); err != nil || hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.GetOrFactor(SparseCholesky, sys.A); err != nil || !hit {
		t.Fatalf("hit=%v err=%v; a lone entry must survive any budget", hit, err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestCachePurge pins Purge: it empties the cache and resets byte accounting
// but keeps the historical counters.
func TestCachePurge(t *testing.T) {
	sys := sparse.Poisson2D(12, 12, 0.05)
	c := NewCache(0)
	if _, _, err := c.GetOrFactor(SparseCholesky, sys.A); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	st := c.Stats()
	if st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("after Purge: %+v", st)
	}
	if st.Misses != 1 {
		t.Fatalf("Purge reset the miss counter: %+v", st)
	}
	if _, hit, _ := c.GetOrFactor(SparseCholesky, sys.A); hit {
		t.Fatal("purged entry still hit")
	}
}

// TestCacheConcurrent hammers one cache from many goroutines over a small
// working set under -race: every returned solver must produce correct
// solutions, and the cache must end internally consistent.
func TestCacheConcurrent(t *testing.T) {
	systems := []sparse.System{
		sparse.Poisson2D(16, 16, 0.05),
		sparse.Poisson2D(16, 16, 0.07),
		sparse.SaddlePoisson2D(8, 8, 1e-2),
	}
	backends := []string{SparseCholesky, SparseSupernodal, SparseLDLT}
	c := NewCache(0)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				sys := systems[(g+i)%len(systems)]
				be := backends[(g+i)%len(backends)]
				if be != SparseLDLT && sys.Name == systems[2].Name {
					be = SparseLDLT // the saddle system is indefinite
				}
				s, _, err := c.GetOrFactor(be, sys.A)
				if err != nil {
					errs <- err
					return
				}
				n := s.Dim()
				x := sparse.NewVec(n)
				s.SolveTo(x, sys.B)
				if r := sys.A.Residual(x, sys.B).NormInf(); r > 1e-8 {
					errs <- errResidual(sys.Name, r)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries == 0 || st.Entries > len(systems)*len(backends) {
		t.Fatalf("inconsistent entry count: %+v", st)
	}
}

func errResidual(name string, r float64) error {
	return fmt.Errorf("%s: residual %g after cached solve", name, r)
}

// TestSharedCache pins the process-wide hook: once enabled, factor.New routes
// through the shared cache, and disabling restores direct factorisation.
func TestSharedCache(t *testing.T) {
	sys := sparse.Poisson2D(16, 16, 0.05)
	c := EnableSharedCache(0)
	defer DisableSharedCache()
	s1, err := New(SparseCholesky, sys.A)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(SparseCholesky, sys.A)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("factor.New did not serve the cached instance while the shared cache was enabled")
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatalf("shared cache saw no hits: %+v", st)
	}
	DisableSharedCache()
	s3, err := New(SparseCholesky, sys.A)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("factor.New still served the cached instance after DisableSharedCache")
	}
}
