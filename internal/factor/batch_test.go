package factor

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/sparse"
)

// batchBackends enumerates every sparse backend × ordering combination the
// byte-agreement contract covers. The grid systems exercise the Cholesky
// paths, the saddle systems the LDLᵀ paths.
func batchBackends(t *testing.T) []struct {
	name   string
	solver LocalSolver
} {
	t.Helper()
	grid := sparse.Poisson2D(28, 28, 0.05)
	saddle := sparse.SaddlePoisson2D(14, 14, 1e-2)
	orders := []struct {
		name  string
		order Ordering
	}{
		{"natural", OrderNatural},
		{"rcm", OrderRCM},
		{"amd", OrderAMD},
		{"nd", OrderND},
	}
	var out []struct {
		name   string
		solver LocalSolver
	}
	add := func(name string, s LocalSolver, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out = append(out, struct {
			name   string
			solver LocalSolver
		}{name, s})
	}
	for _, o := range orders {
		chol, err := NewCholesky(grid.A, o.order)
		add("sparse-cholesky/"+o.name, chol, err)
		ldlt, err := NewLDLT(saddle.A, o.order)
		add("sparse-ldlt/"+o.name, ldlt, err)
		snc, err := NewSupernodal(grid.A, o.order, ModeCholesky)
		add("supernodal-cholesky/"+o.name, snc, err)
		snl, err := NewSupernodal(saddle.A, o.order, ModeLDLT)
		add("supernodal-ldlt/"+o.name, snl, err)
	}
	return out
}

func vecsEqual(a, b sparse.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestSolveBatchAgreement pins the batch contract: SolveBatchTo must hand
// every right-hand side exactly the bytes k sequential SolveTo calls produce,
// on every sparse backend under every ordering, for batch widths on both
// sides of the panel cap (snBatchMaxK).
func TestSolveBatchAgreement(t *testing.T) {
	for _, tc := range batchBackends(t) {
		t.Run(tc.name, func(t *testing.T) {
			bs, ok := tc.solver.(BatchSolver)
			if !ok {
				t.Fatalf("%T does not implement BatchSolver", tc.solver)
			}
			n := tc.solver.Dim()
			for _, k := range []int{1, 2, 3, 8, 17, snBatchMaxK + 3} {
				B := make([]sparse.Vec, k)
				want := make([]sparse.Vec, k)
				got := make([]sparse.Vec, k)
				for r := range B {
					B[r] = sparse.RandomVec(n, int64(101*r+7))
					want[r] = sparse.NewVec(n)
					got[r] = sparse.NewVec(n)
					tc.solver.SolveTo(want[r], B[r])
				}
				bs.SolveBatchTo(got, B)
				for r := range B {
					if !vecsEqual(got[r], want[r]) {
						t.Fatalf("k=%d rhs %d: batched solve differs from scalar solve", k, r)
					}
				}
			}
		})
	}
}

// TestSolveBatchAliasing pins the aliasing clause of the contract: X[r] may
// be the same slice as B[r].
func TestSolveBatchAliasing(t *testing.T) {
	sys := sparse.Poisson2D(20, 20, 0.05)
	s, err := NewSupernodal(sys.A, OrderAuto, ModeCholesky)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	n := s.Dim()
	B := make([]sparse.Vec, k)
	want := make([]sparse.Vec, k)
	for r := range B {
		B[r] = sparse.RandomVec(n, int64(r+1))
		want[r] = sparse.NewVec(n)
		s.SolveTo(want[r], B[r])
	}
	s.SolveBatchTo(B, B) // in place
	for r := range B {
		if !vecsEqual(B[r], want[r]) {
			t.Fatalf("rhs %d: aliased batch solve differs", r)
		}
	}
}

// TestLevelSolveAgreement pins byte-identity of the level-scheduled solve
// against the sequential sweep at GOMAXPROCS 1 and 4, on a factor large
// enough that SolveTo routes to the parallel path (the 128² ND factor, the
// E8 acceptance system) and on a smaller LDLᵀ factor driven explicitly.
func TestLevelSolveAgreement(t *testing.T) {
	cases := []struct {
		name  string
		sys   sparse.System
		mode  SupernodalMode
		order Ordering
	}{
		{"poisson-128-nd", sparse.Poisson2D(128, 128, 0.05), ModeCholesky, OrderND},
		{"saddle-48-amd", sparse.SaddlePoisson2D(48, 48, 1e-2), ModeLDLT, OrderAMD},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSupernodal(tc.sys.A, tc.order, tc.mode)
			if err != nil {
				t.Fatal(err)
			}
			n := s.Dim()
			b := sparse.RandomVec(n, 42)
			want := sparse.NewVec(n)
			s.SolveSeqTo(want, b)

			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				got := sparse.NewVec(n)
				s.SolveLevelTo(got, b)
				if !vecsEqual(got, want) {
					t.Fatalf("GOMAXPROCS=%d: level-scheduled solve differs from sequential", procs)
				}
				got2 := sparse.NewVec(n)
				s.SolveTo(got2, b) // the auto dispatch must agree too
				if !vecsEqual(got2, want) {
					t.Fatalf("GOMAXPROCS=%d: SolveTo dispatch differs from sequential", procs)
				}
			}
		})
	}
}

// TestLevelSolveRouting pins the dispatch policy: the 128² ND factor is
// large enough to route to the level schedule, and its level sets must cover
// every supernode exactly once.
func TestLevelSolveRouting(t *testing.T) {
	sys := sparse.Poisson2D(128, 128, 0.05)
	s, err := NewSupernodal(sys.A, OrderND, ModeCholesky)
	if err != nil {
		t.Fatal(err)
	}
	if !s.parOK {
		t.Fatalf("128² ND factor (nnz=%d) should qualify for the level-scheduled solve", s.NNZL())
	}
	if len(s.levList) != s.ns {
		t.Fatalf("level sets cover %d of %d supernodes", len(s.levList), s.ns)
	}
	seen := make([]bool, s.ns)
	nlev := len(s.levPtr) - 1
	for l := 0; l < nlev; l++ {
		for _, sn := range s.levList[s.levPtr[l]:s.levPtr[l+1]] {
			if seen[sn] {
				t.Fatalf("supernode %d appears in two levels", sn)
			}
			seen[sn] = true
			// Every descendant referenced by the update lists must live on a
			// strictly lower level — the correctness condition of the
			// per-level barrier.
			for _, u := range s.upd[sn] {
				if levelOf(s, u.d) >= l {
					t.Fatalf("supernode %d (level %d) depends on %d (level %d)", sn, l, u.d, levelOf(s, u.d))
				}
			}
		}
	}
	small, err := NewSupernodal(sparse.Poisson2D(16, 16, 0.05).A, OrderAuto, ModeCholesky)
	if err != nil {
		t.Fatal(err)
	}
	if small.parOK {
		t.Fatal("a 256-unknown factor should not route to the parallel solve")
	}
}

func levelOf(s *Supernodal, sn int32) int {
	nlev := len(s.levPtr) - 1
	for l := 0; l < nlev; l++ {
		for _, x := range s.levList[s.levPtr[l]:s.levPtr[l+1]] {
			if x == sn {
				return l
			}
		}
	}
	return -1
}

// TestSolveBatchConcurrentCached is the service-shaped race pin: many
// goroutines pull one factor from a cache and run batched solves on it
// concurrently. Every stream must see the sequential bytes (run under -race
// in CI).
func TestSolveBatchConcurrentCached(t *testing.T) {
	const goroutines = 6
	const k = 9
	sys := sparse.Poisson2D(48, 48, 0.05)
	cache := NewCache(1 << 30)
	s, hit, err := cache.GetOrFactor(SparseSupernodal, sys.A)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first GetOrFactor reported a hit")
	}
	n := s.Dim()
	B := make([]sparse.Vec, k)
	want := make([]sparse.Vec, k)
	for r := range B {
		B[r] = sparse.RandomVec(n, int64(13*r+5))
		want[r] = sparse.NewVec(n)
		s.SolveTo(want[r], B[r])
	}
	var wg sync.WaitGroup
	fail := make([]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sg, hit, err := cache.GetOrFactor(SparseSupernodal, sys.A)
			if err != nil || !hit {
				fail[g] = true
				return
			}
			X := make([]sparse.Vec, k)
			for r := range X {
				X[r] = sparse.NewVec(n)
			}
			for iter := 0; iter < 8; iter++ {
				SolveBatch(sg, X, B)
				for r := range X {
					if !vecsEqual(X[r], want[r]) {
						fail[g] = true
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, f := range fail {
		if f {
			t.Fatalf("goroutine %d: concurrent batched solve on the cached factor diverged", g)
		}
	}
	if st := cache.Stats(); st.Hits < goroutines {
		t.Fatalf("expected ≥%d cache hits, got %+v", goroutines, st)
	}
}

// TestSolveBatchFallback pins the SolveBatch helper on a dense backend (no
// BatchSolver implementation): the sequential fallback must match SolveTo.
func TestSolveBatchFallback(t *testing.T) {
	sys := sparse.PaperExample()
	s, err := New(DenseCholesky, sys.A)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(BatchSolver); ok {
		t.Fatalf("test premise broken: %T implements BatchSolver", s)
	}
	n := s.Dim()
	B := []sparse.Vec{sys.B, sparse.RandomVec(n, 3)}
	X := []sparse.Vec{sparse.NewVec(n), sparse.NewVec(n)}
	SolveBatch(s, X, B)
	for r := range B {
		want := sparse.NewVec(n)
		s.SolveTo(want, B[r])
		if !vecsEqual(X[r], want) {
			t.Fatalf("rhs %d: fallback batch differs from SolveTo", r)
		}
	}
}

// TestSolveBatchScratchReuse pins the per-batch scratch hoisting: after a
// warm-up call, a whole batched solve must run allocation-free on every
// sparse backend (the scalar path allocates nothing either, per solve).
func TestSolveBatchScratchReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is noisy under -short races")
	}
	grid := sparse.Poisson2D(24, 24, 0.05)
	s, err := NewSupernodal(grid.A, OrderAuto, ModeCholesky)
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	n := s.Dim()
	B := make([]sparse.Vec, k)
	X := make([]sparse.Vec, k)
	for r := range B {
		B[r] = sparse.RandomVec(n, int64(r+1))
		X[r] = sparse.NewVec(n)
	}
	s.SolveBatchTo(X, B) // warm the pool
	avg := testing.AllocsPerRun(20, func() {
		s.SolveBatchTo(X, B)
	})
	// A GC between runs may clear the pool once; anything beyond that means
	// the batch path re-acquires scratch per RHS again.
	if avg > 2 {
		t.Fatalf("batched solve allocates %.1f allocs/op; scratch hoisting regressed", avg)
	}
	x := sparse.NewVec(n)
	s.SolveTo(x, B[0])
	avg = testing.AllocsPerRun(20, func() {
		s.SolveTo(x, B[0])
	})
	if avg > 2 {
		t.Fatalf("scalar solve allocates %.1f allocs/op; pool reuse regressed", avg)
	}
}
