package factor

import (
	"fmt"

	"repro/internal/sparse"
)

// BatchSolver is the optional extension of LocalSolver for backends that can
// sweep several right-hand sides through the factor as one panel — one pass
// over the factor's memory instead of k, and (on the supernodal backend)
// rank-k kernel products instead of k rank-1 sweeps. SolveBatchTo must be
// byte-identical per right-hand side to k sequential SolveTo calls, must
// tolerate X[r] aliasing B[r], and must be reentrant, exactly like SolveTo —
// the batched path is a throughput optimisation, never a semantic change.
type BatchSolver interface {
	LocalSolver
	// SolveBatchTo solves A·X[r] = B[r] for every r. len(X) must equal
	// len(B) and every vector must have the factor's dimension.
	SolveBatchTo(X, B []sparse.Vec)
}

// SolveBatch solves the k systems A·X[r] = B[r] through s, using the panel
// path when the backend provides one and falling back to k sequential
// SolveTo calls otherwise (the dense backends, whose factors are small
// enough that the scalar sweep is already cache-resident). This is the entry
// point the preconditioner application and the multi-wave subdomain solves
// route through.
func SolveBatch(s LocalSolver, X, B []sparse.Vec) {
	if len(X) != len(B) {
		panic(fmt.Sprintf("factor: batch solve mismatch len(X)=%d len(B)=%d", len(X), len(B)))
	}
	if bs, ok := s.(BatchSolver); ok {
		bs.SolveBatchTo(X, B)
		return
	}
	for r := range B {
		s.SolveTo(X[r], B[r])
	}
}

// cscBatchScratch is the per-batch scratch of the scalar sparse backends'
// SolveBatchTo: the row-major n×kp working panel and the pivot-row buffer.
// One Get/Put pair serves the whole batch, where the scalar path pays one
// per solve.
type cscBatchScratch struct {
	w    []float64
	vbuf []float64
}

// batchPanelBlock is the row-block size of the panel transposes: one block of
// the working panel (batchPanelBlock×kp ≤ 128 KiB) stays cache-resident while
// every right-hand side streams through it, instead of touching k scattered
// vectors per panel row.
const batchPanelBlock = 256

// batchPanelIn loads the working panel from the batch: w[i*kp+r] = B[r][p(i)]
// with p the factor's permutation (nil = identity). The transpose runs
// row-blocked, four right-hand sides at a time per block, so every panel row
// visited gets one contiguous 32-byte write instead of four strided stores.
// Returns the panel width.
func batchPanelIn(w []float64, B []sparse.Vec, perm Perm, n int) int {
	kp := len(B)
	for i0 := 0; i0 < n; i0 += batchPanelBlock {
		i1 := i0 + batchPanelBlock
		if i1 > n {
			i1 = n
		}
		r := 0
		for ; r+4 <= kp; r += 4 {
			b0, b1, b2, b3 := B[r], B[r+1], B[r+2], B[r+3]
			for i := i0; i < i1; i++ {
				pi := i
				if perm != nil {
					pi = perm[i]
				}
				dst := w[i*kp+r : i*kp+r+4 : i*kp+r+4]
				dst[0], dst[1], dst[2], dst[3] = b0[pi], b1[pi], b2[pi], b3[pi]
			}
		}
		for ; r < kp; r++ {
			b := B[r]
			if perm != nil {
				for i := i0; i < i1; i++ {
					w[i*kp+r] = b[perm[i]]
				}
			} else {
				for i := i0; i < i1; i++ {
					w[i*kp+r] = b[i]
				}
			}
		}
	}
	return kp
}

// batchPanelOut stores the solved working panel back into the batch:
// X[r][p(i)] = w[i*kp+r], row-blocked and four-wide like batchPanelIn.
func batchPanelOut(w []float64, X []sparse.Vec, perm Perm, n int) {
	kp := len(X)
	for i0 := 0; i0 < n; i0 += batchPanelBlock {
		i1 := i0 + batchPanelBlock
		if i1 > n {
			i1 = n
		}
		r := 0
		for ; r+4 <= kp; r += 4 {
			x0, x1, x2, x3 := X[r], X[r+1], X[r+2], X[r+3]
			for i := i0; i < i1; i++ {
				pi := i
				if perm != nil {
					pi = perm[i]
				}
				src := w[i*kp+r : i*kp+r+4 : i*kp+r+4]
				x0[pi], x1[pi], x2[pi], x3[pi] = src[0], src[1], src[2], src[3]
			}
		}
		for ; r < kp; r++ {
			x := X[r]
			if perm != nil {
				for i := i0; i < i1; i++ {
					x[perm[i]] = w[i*kp+r]
				}
			} else {
				for i := i0; i < i1; i++ {
					x[i] = w[i*kp+r]
				}
			}
		}
	}
}

// batchValidate panics on a shape mismatch between the batch and the factor.
func batchValidate(name string, n int, X, B []sparse.Vec) {
	if len(X) != len(B) {
		panic(fmt.Sprintf("factor: %s batch solve mismatch len(X)=%d len(B)=%d", name, len(X), len(B)))
	}
	for r := range B {
		if len(B[r]) != n || len(X[r]) != n {
			panic(fmt.Sprintf("factor: %s batch solve dimension mismatch n=%d len(B[%d])=%d len(X[%d])=%d", name, n, r, len(B[r]), r, len(X[r])))
		}
	}
}
