package factor

import (
	"sync"
	"testing"

	"repro/internal/sparse"
)

// TestSolveToConcurrentReentrant is the reentrancy bugfix's pin: one factor
// serving eight goroutines of factor-once/solve-many traffic (the DTM
// subdomain pattern) must produce byte-identical solutions on every stream —
// run under -race in CI, where the old factor-owned scratch buffers showed up
// as a data race and silently corrupted results.
func TestSolveToConcurrentReentrant(t *testing.T) {
	const goroutines = 8
	const solvesPerG = 16

	systems := []struct {
		name  string
		sys   sparse.System
		build func(sys sparse.System) (LocalSolver, error)
	}{
		{"sparse-cholesky", sparse.Poisson2D(48, 48, 0.05), func(s sparse.System) (LocalSolver, error) {
			return NewCholesky(s.A, OrderAuto)
		}},
		{"sparse-ldlt", sparse.SaddlePoisson2D(24, 24, 1e-2), func(s sparse.System) (LocalSolver, error) {
			return NewLDLT(s.A, OrderAuto)
		}},
		{"supernodal-cholesky", sparse.Poisson2D(64, 64, 0.05), func(s sparse.System) (LocalSolver, error) {
			return NewSupernodal(s.A, OrderAuto, ModeCholesky)
		}},
		{"supernodal-nd", sparse.Poisson2D(64, 64, 0.05), func(s sparse.System) (LocalSolver, error) {
			return NewSupernodal(s.A, OrderND, ModeCholesky)
		}},
		{"supernodal-ldlt", sparse.SaddlePoisson2D(32, 32, 1e-2), func(s sparse.System) (LocalSolver, error) {
			return NewSupernodal(s.A, OrderAuto, ModeLDLT)
		}},
	}

	for _, tc := range systems {
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.build(tc.sys)
			if err != nil {
				t.Fatal(err)
			}
			n := s.Dim()
			// Per-goroutine right-hand sides (reused across all goroutines) and
			// the sequential reference solutions.
			rhs := make([]sparse.Vec, solvesPerG)
			want := make([]sparse.Vec, solvesPerG)
			for i := range rhs {
				rhs[i] = sparse.RandomVec(n, int64(7*i+1))
				want[i] = sparse.NewVec(n)
				s.SolveTo(want[i], rhs[i])
			}

			var wg sync.WaitGroup
			diffs := make([]int, goroutines) // first differing solve index +1, else 0
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					x := sparse.NewVec(n)
					for i := range rhs {
						s.SolveTo(x, rhs[i])
						for k := range x {
							if x[k] != want[i][k] {
								diffs[g] = i + 1
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			for g, d := range diffs {
				if d != 0 {
					t.Errorf("goroutine %d: solve %d differs from the sequential reference", g, d-1)
				}
			}
		})
	}
}

// TestInertiaCrossBackendAgreement is the inertia bugfix's pin: on a
// singular-leaning quasi-definite system (the trailing −γI block pushed to
// within a whisker of zero) the scalar and supernodal LDLᵀ backends must
// report the same (pos, neg, zero) triple, pivot for pivot, and the triple
// must account for every unknown.
func TestInertiaCrossBackendAgreement(t *testing.T) {
	for _, tc := range []struct {
		name  string
		gamma float64
	}{
		{"quasi-definite", 1e-2},
		{"singular-leaning", 1e-9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys := sparse.SaddlePoisson2D(24, 24, tc.gamma)
			n := sys.Dim()
			for _, ord := range []Ordering{OrderNatural, OrderAMD, OrderND} {
				scalar, err := NewLDLT(sys.A, ord)
				if err != nil {
					t.Fatalf("%v scalar: %v", ord, err)
				}
				sn, err := NewSupernodal(sys.A, ord, ModeLDLT)
				if err != nil {
					t.Fatalf("%v supernodal: %v", ord, err)
				}
				sp, sneg, szero := scalar.Inertia()
				p, neg, zero := sn.Inertia()
				if p != sp || neg != sneg || zero != szero {
					t.Errorf("%v: supernodal inertia (%d+,%d-,%d0) differs from scalar (%d+,%d-,%d0)",
						ord, p, neg, zero, sp, sneg, szero)
				}
				if p+neg+zero != n {
					t.Errorf("%v: inertia (%d+,%d-,%d0) does not account for n=%d", ord, p, neg, zero, n)
				}
			}
		})
	}
}

// TestInertiaZeroPivotClassification pins the classification itself: a zero
// is neither positive nor negative on both backends (exercised directly on
// the pivot classifier, since the factorisations reject zero pivots via the
// relative threshold before they could ever be stored).
func TestInertiaZeroPivotClassification(t *testing.T) {
	pos, neg, zero := inertiaOf([]float64{3, -2, 0, 1, 0})
	if pos != 2 || neg != 1 || zero != 2 {
		t.Errorf("inertiaOf = (%d+, %d-, %d0), want (2+, 1-, 20)", pos, neg, zero)
	}
	// Cholesky mode: all positive by construction, no zeros.
	sys := sparse.Poisson2D(16, 16, 0.05)
	sn, err := NewSupernodal(sys.A, OrderAuto, ModeCholesky)
	if err != nil {
		t.Fatal(err)
	}
	if p, n, z := sn.Inertia(); p != sys.Dim() || n != 0 || z != 0 {
		t.Errorf("Cholesky-mode inertia = (%d+, %d-, %d0), want (%d+, 0-, 00)", p, n, z, sys.Dim())
	}
}
