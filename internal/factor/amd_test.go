package factor

import (
	"testing"

	"repro/internal/sparse"
)

// irregularTestMatrices are symmetric patterns that are decidedly not
// bounded-degree grid stencils — the class the OrderAuto policy sends to AMD.
func irregularTestMatrices() map[string]*sparse.CSR {
	star := sparse.NewCOO(40, 40)
	for i := 0; i < 40; i++ {
		star.Add(i, i, 40)
		if i > 0 {
			star.AddSym(0, i, -1)
		}
	}
	return map[string]*sparse.CSR{
		"random-spd-300":  sparse.RandomSPD(300, 0.03, 11).A,
		"random-spd-500":  sparse.RandomSPD(500, 0.02, 5).A,
		"saddle-20x20":    sparse.SaddlePoisson2D(20, 20, 1e-2).A,
		"star-40":         star.ToCSR(),
		"resistor-irregs": sparse.RandomSPD(200, 0.08, 3).A,
	}
}

func TestAMDIsAValidPermutation(t *testing.T) {
	cases := irregularTestMatrices()
	cases["poisson-16x16"] = sparse.Poisson2D(16, 16, 0.05).A
	cases["identity-50"] = sparse.Identity(50)
	cases["tridiag-30"] = sparse.Tridiagonal(30, 2.1, -1).A
	cases["single"] = sparse.Identity(1)
	for name, a := range cases {
		p := AMD(a)
		if len(p) != a.Rows() {
			t.Errorf("%s: AMD returned %d indices for an n=%d matrix", name, len(p), a.Rows())
			continue
		}
		if err := p.Check(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAMDIsDeterministic(t *testing.T) {
	for name, a := range irregularTestMatrices() {
		first := AMD(a)
		for run := 0; run < 3; run++ {
			again := AMD(a)
			for i := range first {
				if first[i] != again[i] {
					t.Errorf("%s: AMD run %d diverges at position %d: %d vs %d", name, run, i, first[i], again[i])
					break
				}
			}
		}
	}
}

// TestAMDFillNoWorseThanNatural pins the point of the ordering: on irregular
// graphs the AMD-permuted factor must not carry more fill than factorising in
// the natural order.
func TestAMDFillNoWorseThanNatural(t *testing.T) {
	for name, a := range irregularTestMatrices() {
		natural, err := NewLDLT(a, OrderNatural)
		if err != nil {
			t.Fatalf("%s natural: %v", name, err)
		}
		amd, err := NewLDLT(a, OrderAMD)
		if err != nil {
			t.Fatalf("%s amd: %v", name, err)
		}
		if amd.NNZL() > natural.NNZL() {
			t.Errorf("%s: AMD fill %d exceeds natural fill %d", name, amd.NNZL(), natural.NNZL())
		}
	}
}

// TestAMDBeatsRCMOnIrregularGraphs documents why the OrderAuto policy exists:
// on irregular patterns AMD's local greedy degree decisions produce (often
// dramatically) sparser factors than RCM's breadth-first band.
func TestAMDBeatsRCMOnIrregularGraphs(t *testing.T) {
	for _, name := range []string{"random-spd-500", "saddle-20x20", "star-40"} {
		a := irregularTestMatrices()[name]
		rcm, err := NewLDLT(a, OrderRCM)
		if err != nil {
			t.Fatalf("%s rcm: %v", name, err)
		}
		amd, err := NewLDLT(a, OrderAMD)
		if err != nil {
			t.Fatalf("%s amd: %v", name, err)
		}
		if amd.NNZL() > rcm.NNZL() {
			t.Errorf("%s: AMD fill %d exceeds RCM fill %d on an irregular graph", name, amd.NNZL(), rcm.NNZL())
		}
	}
}

// TestAMDMassElimination pins the mass-elimination path: in a clique glued
// onto an otherwise empty graph, the first clique pivot dominates the rest,
// so the whole clique must be emitted contiguously (and the stats must show
// the free eliminations happened).
func TestAMDMassElimination(t *testing.T) {
	const n, lo, hi = 12, 3, 9 // clique on vertices [3, 9)
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
	}
	for i := lo; i < hi; i++ {
		for j := i + 1; j < hi; j++ {
			coo.AddSym(i, j, -1)
		}
	}
	p, stats := amdOrder(coo.ToCSR())
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if stats.massElim == 0 {
		t.Error("eliminating a clique performed no mass eliminations")
	}
	pos := map[int]int{}
	for idx, v := range p {
		pos[v] = idx
	}
	minPos, maxPos := n, -1
	for v := lo; v < hi; v++ {
		if pos[v] < minPos {
			minPos = pos[v]
		}
		if pos[v] > maxPos {
			maxPos = pos[v]
		}
	}
	if maxPos-minPos != hi-lo-1 {
		t.Errorf("clique members are not contiguous in the ordering: %v", p)
	}
}

// TestAMDSupervariableDetection pins the indistinguishable-node merge: the
// saddle multiplier rows couple disjoint runs of grid vertices, which leaves
// the grid full of twins once elimination starts. The stats must show
// supervariables forming, and the quality tests above already pin that the
// fill stays at least as good.
func TestAMDSupervariableDetection(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    *sparse.CSR
	}{
		{"saddle-20x20", sparse.SaddlePoisson2D(20, 20, 1e-2).A},
		{"poisson-24x24", sparse.Poisson2D(24, 24, 0.05).A},
	} {
		_, stats := amdOrder(tc.a)
		if stats.supervars == 0 {
			t.Errorf("%s: no supervariables detected", tc.name)
		}
	}
}

// TestAMDSupervariablesKeepQuality compares fill with and without the
// supervariable fast path engaged in spirit: the ordering must stay within
// the natural-order fill (already pinned above) and must still be exact on a
// matrix whose pattern makes every vertex a twin — a block-diagonal matrix of
// dense blocks must order with zero extra fill.
func TestAMDSupervariablesKeepQuality(t *testing.T) {
	const blocks, bs = 6, 5
	n := blocks * bs
	coo := sparse.NewCOO(n, n)
	for b := 0; b < blocks; b++ {
		for i := 0; i < bs; i++ {
			coo.Add(b*bs+i, b*bs+i, float64(bs))
			for j := i + 1; j < bs; j++ {
				coo.AddSym(b*bs+i, b*bs+j, -0.5)
			}
		}
	}
	a := coo.ToCSR()
	ldlt, err := NewLDLT(a, OrderAMD)
	if err != nil {
		t.Fatal(err)
	}
	// Dense blocks are already cliques: the factor's strictly-lower count per
	// block is bs·(bs-1)/2 no matter the order, so any extra fill is a bug.
	want := blocks * bs * (bs - 1) / 2
	if ldlt.NNZL() != want {
		t.Errorf("block-diagonal AMD fill %d, want the clique minimum %d", ldlt.NNZL(), want)
	}
}

func TestOrderAutoPolicy(t *testing.T) {
	// Bounded-degree grid stencil → RCM.
	grid := sparse.Poisson2D(24, 24, 0.05).A
	if got := resolveOrdering(grid, OrderAuto); got != OrderRCM {
		t.Errorf("OrderAuto on a 5-point grid resolved to %s, want rcm", got)
	}
	// A saddle pattern has nx-degree multiplier rows → AMD.
	saddle := sparse.SaddlePoisson2D(20, 20, 1e-2).A
	if got := resolveOrdering(saddle, OrderAuto); got != OrderAMD {
		t.Errorf("OrderAuto on a saddle pattern resolved to %s, want amd", got)
	}
	// Concrete orderings pass through untouched.
	for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD} {
		if got := resolveOrdering(saddle, ord); got != ord {
			t.Errorf("resolveOrdering(%s) = %s, want unchanged", ord, got)
		}
	}
	// The factorisations report the resolved ordering.
	chol, err := NewCholesky(grid, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	if chol.Ordering() != OrderRCM {
		t.Errorf("grid Cholesky resolved to %s, want rcm", chol.Ordering())
	}
	ldlt, err := NewLDLT(saddle, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ldlt.Ordering() != OrderAMD {
		t.Errorf("saddle LDLT resolved to %s, want amd", ldlt.Ordering())
	}
}

func TestOrderingString(t *testing.T) {
	want := map[Ordering]string{
		OrderNatural: "natural", OrderRCM: "rcm", OrderAMD: "amd",
		OrderAuto: "auto", Ordering(99): "unknown",
	}
	for ord, s := range want {
		if ord.String() != s {
			t.Errorf("Ordering(%d).String() = %q, want %q", int(ord), ord.String(), s)
		}
	}
}
