package factor

import (
	"testing"

	"repro/internal/sparse"
)

// irregularTestMatrices are symmetric patterns that are decidedly not
// bounded-degree grid stencils — the class the OrderAuto policy sends to AMD.
func irregularTestMatrices() map[string]*sparse.CSR {
	star := sparse.NewCOO(40, 40)
	for i := 0; i < 40; i++ {
		star.Add(i, i, 40)
		if i > 0 {
			star.AddSym(0, i, -1)
		}
	}
	return map[string]*sparse.CSR{
		"random-spd-300":  sparse.RandomSPD(300, 0.03, 11).A,
		"random-spd-500":  sparse.RandomSPD(500, 0.02, 5).A,
		"saddle-20x20":    sparse.SaddlePoisson2D(20, 20, 1e-2).A,
		"star-40":         star.ToCSR(),
		"resistor-irregs": sparse.RandomSPD(200, 0.08, 3).A,
	}
}

func TestAMDIsAValidPermutation(t *testing.T) {
	cases := irregularTestMatrices()
	cases["poisson-16x16"] = sparse.Poisson2D(16, 16, 0.05).A
	cases["identity-50"] = sparse.Identity(50)
	cases["tridiag-30"] = sparse.Tridiagonal(30, 2.1, -1).A
	cases["single"] = sparse.Identity(1)
	for name, a := range cases {
		p := AMD(a)
		if len(p) != a.Rows() {
			t.Errorf("%s: AMD returned %d indices for an n=%d matrix", name, len(p), a.Rows())
			continue
		}
		if err := p.Check(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAMDIsDeterministic(t *testing.T) {
	for name, a := range irregularTestMatrices() {
		first := AMD(a)
		for run := 0; run < 3; run++ {
			again := AMD(a)
			for i := range first {
				if first[i] != again[i] {
					t.Errorf("%s: AMD run %d diverges at position %d: %d vs %d", name, run, i, first[i], again[i])
					break
				}
			}
		}
	}
}

// TestAMDFillNoWorseThanNatural pins the point of the ordering: on irregular
// graphs the AMD-permuted factor must not carry more fill than factorising in
// the natural order.
func TestAMDFillNoWorseThanNatural(t *testing.T) {
	for name, a := range irregularTestMatrices() {
		natural, err := NewLDLT(a, OrderNatural)
		if err != nil {
			t.Fatalf("%s natural: %v", name, err)
		}
		amd, err := NewLDLT(a, OrderAMD)
		if err != nil {
			t.Fatalf("%s amd: %v", name, err)
		}
		if amd.NNZL() > natural.NNZL() {
			t.Errorf("%s: AMD fill %d exceeds natural fill %d", name, amd.NNZL(), natural.NNZL())
		}
	}
}

// TestAMDBeatsRCMOnIrregularGraphs documents why the OrderAuto policy exists:
// on irregular patterns AMD's local greedy degree decisions produce (often
// dramatically) sparser factors than RCM's breadth-first band.
func TestAMDBeatsRCMOnIrregularGraphs(t *testing.T) {
	for _, name := range []string{"random-spd-500", "saddle-20x20", "star-40"} {
		a := irregularTestMatrices()[name]
		rcm, err := NewLDLT(a, OrderRCM)
		if err != nil {
			t.Fatalf("%s rcm: %v", name, err)
		}
		amd, err := NewLDLT(a, OrderAMD)
		if err != nil {
			t.Fatalf("%s amd: %v", name, err)
		}
		if amd.NNZL() > rcm.NNZL() {
			t.Errorf("%s: AMD fill %d exceeds RCM fill %d on an irregular graph", name, amd.NNZL(), rcm.NNZL())
		}
	}
}

func TestOrderAutoPolicy(t *testing.T) {
	// Bounded-degree grid stencil → RCM.
	grid := sparse.Poisson2D(24, 24, 0.05).A
	if got := resolveOrdering(grid, OrderAuto); got != OrderRCM {
		t.Errorf("OrderAuto on a 5-point grid resolved to %s, want rcm", got)
	}
	// A saddle pattern has nx-degree multiplier rows → AMD.
	saddle := sparse.SaddlePoisson2D(20, 20, 1e-2).A
	if got := resolveOrdering(saddle, OrderAuto); got != OrderAMD {
		t.Errorf("OrderAuto on a saddle pattern resolved to %s, want amd", got)
	}
	// Concrete orderings pass through untouched.
	for _, ord := range []Ordering{OrderNatural, OrderRCM, OrderAMD} {
		if got := resolveOrdering(saddle, ord); got != ord {
			t.Errorf("resolveOrdering(%s) = %s, want unchanged", ord, got)
		}
	}
	// The factorisations report the resolved ordering.
	chol, err := NewCholesky(grid, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	if chol.Ordering() != OrderRCM {
		t.Errorf("grid Cholesky resolved to %s, want rcm", chol.Ordering())
	}
	ldlt, err := NewLDLT(saddle, OrderAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ldlt.Ordering() != OrderAMD {
		t.Errorf("saddle LDLT resolved to %s, want amd", ldlt.Ordering())
	}
}

func TestOrderingString(t *testing.T) {
	want := map[Ordering]string{
		OrderNatural: "natural", OrderRCM: "rcm", OrderAMD: "amd",
		OrderAuto: "auto", Ordering(99): "unknown",
	}
	for ord, s := range want {
		if ord.String() != s {
			t.Errorf("Ordering(%d).String() = %q, want %q", int(ord), ord.String(), s)
		}
	}
}
