# Developer entry points for the DTM reproduction. `make bench` writes the
# machine-readable BENCH_dtm.json used to track the perf trajectory PR over PR.

GO ?= go

.PHONY: all build vet test bench bench-gate bench-smoke cover clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark sweep of the hot-path figures and the E6/E7 experiments,
# plus a machine-readable summary (wall time / allocations per experiment) in
# BENCH_dtm.json.
bench:
	$(GO) test -bench='BenchmarkFig12$$|BenchmarkFig14$$|BenchmarkCompareAsyncJacobi$$|BenchmarkE6ScaleSparse$$|BenchmarkE7FaultSweep$$|BenchmarkE8SolveThroughput$$|BenchmarkE9CompareDistributed$$|BenchmarkE10FailoverSweep$$|BenchmarkE11SpannerFabric$$' \
		-benchmem -benchtime=2x -run '^$$' .
	$(GO) run ./cmd/dtmbench -benchjson BENCH_dtm.json -quick

# The benchmark-regression gate CI runs: measure into BENCH_current.json and
# diff against the committed BENCH_dtm.json baseline (fails on >25% ns/op or
# >10% allocs/op regressions). Re-baseline intentional changes with `make
# bench` and commit the rewritten BENCH_dtm.json.
bench-gate:
	$(GO) run ./cmd/dtmbench -benchjson BENCH_current.json -quick
	$(GO) run ./cmd/benchdiff -baseline BENCH_dtm.json -current BENCH_current.json

# One-iteration smoke run for CI: every benchmark must at least complete.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Coverage ratchet (same gate CI runs): total statement coverage must stay at
# or above the floor committed in COVERAGE_FLOOR.
cover:
	./scripts/coverage_gate.sh

clean:
	rm -f repro.test *.test *.out *.pprof BENCH_current.json
