# Developer entry points for the DTM reproduction. `make bench` writes the
# machine-readable BENCH_dtm.json used to track the perf trajectory PR over PR.

GO ?= go

.PHONY: all build vet test bench bench-smoke clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark sweep of the hot-path figures and the E6 scale experiment,
# plus a machine-readable summary (wall time / allocations per experiment) in
# BENCH_dtm.json.
bench:
	$(GO) test -bench='BenchmarkFig12$$|BenchmarkFig14$$|BenchmarkCompareAsyncJacobi$$|BenchmarkE6ScaleSparse$$' \
		-benchmem -benchtime=2x -run '^$$' .
	$(GO) run ./cmd/dtmbench -benchjson BENCH_dtm.json -quick

# One-iteration smoke run for CI: every benchmark must at least complete.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

clean:
	rm -f repro.test *.test *.out *.pprof BENCH_*.json
