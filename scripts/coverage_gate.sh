#!/usr/bin/env bash
# Coverage ratchet: fail when total statement coverage drops below the floor
# committed in COVERAGE_FLOOR. When coverage durably improves, raise the floor
# (keep ~2-4 points of headroom so legitimate refactors don't flake).
set -euo pipefail
cd "$(dirname "$0")/.."

floor=$(tr -d '[:space:]' < COVERAGE_FLOOR)
go test ./... -coverprofile=cover.out > /dev/null
total=$(go tool cover -func=cover.out | awk '/^total:/ { gsub(/%/, "", $3); print $3 }')
echo "total statement coverage: ${total}% (committed floor: ${floor}%)"
if ! awk -v t="$total" -v f="$floor" 'BEGIN { exit (t + 0 >= f + 0) ? 0 : 1 }'; then
    echo "FAIL: coverage ${total}% fell below the committed floor ${floor}%" >&2
    exit 1
fi
