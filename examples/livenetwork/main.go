// Livenetwork: run DTM with genuine asynchrony — one goroutine per subdomain,
// real (scaled) communication delays, no synchronisation of any kind — instead
// of the deterministic discrete-event simulator. Every run interleaves
// differently, yet by Theorem 6.1 every run converges to the same solution;
// this example runs the live engine several times and shows exactly that.
//
// Run with:
//
//	go run ./examples/livenetwork
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/iterative"
	"repro/internal/sparse"
	"repro/internal/topology"
)

func main() {
	nx := flag.Int("nx", 33, "grid side length")
	parts := flag.Int("px", 4, "processor mesh side (px*px goroutines)")
	runs := flag.Int("runs", 3, "number of independent live runs")
	flag.Parse()

	sys := sparse.Poisson2D(*nx, *nx, 0.05)
	exact, st, err := iterative.CG(sys.A, sys.B, iterative.Config{MaxIterations: 20 * sys.Dim(), Tol: 1e-13})
	if err != nil || !st.Converged {
		log.Fatalf("reference CG failed: %v (converged=%v)", err, st.Converged)
	}

	// The same heterogeneous delay structure as the paper's 4×4 mesh, but the
	// delays are now mapped onto real wall-clock sleeps (1 ms unit → 20 µs of
	// real time), so a 99 ms link really is ten times slower than a 10 ms one.
	machine := topology.Mesh4x4Paper()
	if *parts != 4 {
		machine = topology.MeshUniformRandom(*parts, *parts, 10, 99, 42, "heterogeneous mesh")
	}
	prob, err := core.GridProblem(sys, *nx, *nx, *parts, *parts, machine)
	if err != nil {
		log.Fatalf("building the DTM problem: %v", err)
	}

	fmt.Printf("system %q (n=%d) on %q — %d subdomains, one goroutine each\n", sys.Name, sys.Dim(), machine.Name(), *parts**parts)
	fmt.Println(core.CheckTheorem(prob, 1e-9, 400))
	fmt.Println()

	for run := 1; run <= *runs; run++ {
		res, err := core.Solve(context.Background(), prob, core.Config{
			CommonOptions: core.CommonOptions{
				Tol:         1e-9,
				Exact:       exact,
				RecordTrace: true,
				MaxWallTime: 5 * time.Second,
			},
			Engine:       core.EngineLive,
			TimeScale:    20 * time.Microsecond,
			PollInterval: time.Millisecond,
		})
		if err != nil {
			log.Fatalf("live run %d: %v", run, err)
		}
		fmt.Printf("run %d: converged=%v in %.2f s wall time, %6d local solves, %7d messages, RMS error %.3g, residual %.3g\n",
			run, res.Converged, res.FinalTime, res.Solves, res.Messages, res.RMSError, res.Residual)
	}

	// One more run on a lossy network: every channel drops 10% of its packets
	// and jitters the rest, and the run still lands on the same answer — the
	// self-stabilisation claim, live.
	res, err := core.Solve(context.Background(), prob, core.Config{
		CommonOptions: core.CommonOptions{
			Tol:         1e-9,
			Exact:       exact,
			Faults:      &chaos.Spec{Seed: 7, Drop: 0.10, Jitter: 0.5},
			MaxWallTime: 10 * time.Second,
		},
		Engine:       core.EngineLive,
		TimeScale:    20 * time.Microsecond,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		log.Fatalf("lossy live run: %v", err)
	}
	fmt.Printf("lossy: converged=%v in %.2f s wall time, %6d local solves, %7d messages, RMS error %.3g (%d dropped, %d retransmissions)\n",
		res.Converged, res.FinalTime, res.Solves, res.Messages, res.RMSError, res.Faults.Dropped, res.Faults.Retransmissions)

	fmt.Println("\nthe solve counts differ from run to run (the interleaving is real), the answer does not — that is the convergence theorem at work")
}
