// Quickstart: solve the paper's 4-unknown running example (equation (3.2))
// with the Directed Transmission Method on the two-processor machine of
// Example 5.1, and verify the result against a direct solve.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/sparse"
	"repro/internal/topology"
)

func main() {
	// The electric graph of the paper's system (3.2):
	//
	//   [  5 -1 -1  0 ] [x1]   [1]
	//   [ -1  6 -2 -1 ] [x2]   [2]
	//   [ -1 -2  7 -2 ] [x3] = [3]
	//   [  0 -1 -2  8 ] [x4]   [4]
	sys := sparse.PaperExample()
	fmt.Printf("system %q: n=%d, nnz=%d\n\n", sys.Name, sys.Dim(), sys.A.NNZ())

	// The machine of Example 5.1: two processors, 6.7 µs from A to B and
	// 2.9 µs from B to A — note the asymmetry, which DTM maps one-to-one onto
	// the propagation delays of its directed transmission lines.
	machine := topology.TwoProcessorPaper()
	fmt.Printf("machine %q: delay A->B = %.1f us, B->A = %.1f us\n\n",
		machine.Name(), machine.Delay(0, 1), machine.Delay(1, 0))

	// Partition the electric graph into two subgraphs by Electric Vertex
	// Splitting and map each subgraph onto one processor.
	prob, err := core.AutoProblem(sys, 2, machine)
	if err != nil {
		log.Fatalf("building the DTM problem: %v", err)
	}

	// Certify the hypotheses of the convergence theorem (Theorem 6.1): the
	// original system is SPD, at least one subgraph is SPD and the others are
	// symmetric non-negative definite. Any positive impedances and delays then
	// converge.
	report := core.CheckTheorem(prob, 1e-10, 100)
	fmt.Println(report)

	// Run DTM on the deterministic discrete-event engine until the twin
	// potentials agree to 1e-10.
	res, err := core.Solve(context.Background(), prob, core.Config{
		CommonOptions: core.CommonOptions{Tol: 1e-10},
		MaxTime:       500, // microseconds of virtual time
	})
	if err != nil {
		log.Fatalf("running DTM: %v", err)
	}

	// Compare against a dense direct solve.
	exact, err := dense.SolveExact(sys.A, sys.B)
	if err != nil {
		log.Fatalf("direct solve: %v", err)
	}

	fmt.Printf("\nDTM finished at t = %.1f us after %d local solves and %d messages (converged=%v)\n\n",
		res.FinalTime, res.Solves, res.Messages, res.Converged)
	fmt.Println("  i        DTM x[i]        exact x[i]")
	for i := range exact {
		fmt.Printf("  %d  %14.10f  %16.10f\n", i+1, res.X[i], exact[i])
	}
	fmt.Printf("\nRMS error %.3g, relative residual %.3g, final twin gap %.3g\n",
		res.X.RMSError(exact), res.Residual, res.TwinGap)
}
