// Circuit: solve a resistor-network nodal-analysis system with DTM. The
// electric-graph language of the paper (potentials, currents, Kirchhoff-style
// vertex splitting, transmission lines) comes straight from circuit
// simulation, and EVS is literally the "wire tearing" used to partition large
// circuits; this example makes that connection concrete by solving the nodal
// equations G·v = i of a randomly weighted resistor grid with current sources.
//
// Run with:
//
//	go run ./examples/circuit
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/iterative"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/topology"
)

func main() {
	nx := flag.Int("nx", 24, "grid width of the resistor network")
	ny := flag.Int("ny", 24, "grid height of the resistor network")
	parts := flag.Int("parts", 4, "number of subcircuits (processors)")
	flag.Parse()

	// The nodal-analysis system of an nx×ny resistor grid: conductances on the
	// grid edges, a grounding conductance at every node, and current sources.
	// The conductance matrix is SPD, as every well-posed resistive circuit's is.
	sys := sparse.ResistorNetwork(*nx, *ny, 7)
	fmt.Printf("circuit %q: %d nodes, %d conductances\n", sys.Name, sys.Dim(), (sys.A.NNZ()-sys.Dim())/2)

	// The electric graph is exactly the circuit: vertex weights are the
	// diagonal conductances, edge weights the negated branch conductances, and
	// sources the injected currents.
	g, err := graph.FromSystem(sys.A, sys.B)
	if err != nil {
		log.Fatalf("building the electric graph: %v", err)
	}
	fmt.Printf("electric graph: %d vertices, %d edges, connected=%v\n\n", g.Order(), g.NumEdges(), g.IsConnected())

	// Tear the circuit into subcircuits (wire tearing / EVS) with the BFS
	// level-set partitioner and default dominance-proportional splitting.
	assign := partition.LevelSetGrow(g, *parts)
	fmt.Printf("partition into %d subcircuits: sizes %v, edge cut %d, boundary nodes %d\n",
		assign.Parts, assign.PartSizes(), partition.EdgeCut(g, assign), len(partition.BoundaryVertices(g, assign)))
	res, err := partition.EVS(g, assign, partition.Options{})
	if err != nil {
		log.Fatalf("EVS: %v", err)
	}
	fmt.Printf("EVS inserted %d twin links (directed transmission line pairs)\n\n", len(res.Links))

	// Each subcircuit runs on one processor of a small uniform machine.
	machine := topology.Uniform(*parts, 10, "4-processor workstation cluster")
	prob, err := core.NewProblem(sys, res, machine, nil)
	if err != nil {
		log.Fatalf("assembling the problem: %v", err)
	}
	fmt.Println(core.CheckTheorem(prob, 1e-10, 400))

	dtmRes, err := core.Solve(context.Background(), prob, core.Config{
		CommonOptions: core.CommonOptions{Tol: 1e-10},
		MaxTime:       50000,
	})
	if err != nil {
		log.Fatalf("running DTM: %v", err)
	}

	// Validate the node potentials against a direct solve (small circuit) or
	// a tight CG solve (large circuit).
	var exact sparse.Vec
	if sys.Dim() <= 600 {
		exact, err = dense.SolveExact(sys.A, sys.B)
	} else {
		exact, _, err = iterative.CG(sys.A, sys.B, iterative.Config{MaxIterations: 20 * sys.Dim(), Tol: 1e-13})
	}
	if err != nil {
		log.Fatalf("reference solve: %v", err)
	}

	fmt.Printf("\nDTM solved the circuit at t = %.0f (converged=%v): RMS node-potential error %.3g, relative residual %.3g\n",
		dtmRes.FinalTime, dtmRes.Converged, dtmRes.X.RMSError(exact), dtmRes.Residual)
	fmt.Printf("%d local subcircuit solves, %d messages between subcircuits\n", dtmRes.Solves, dtmRes.Messages)

	// A few node potentials, as a circuit simulator would report them.
	fmt.Println("\nsample node potentials (V):")
	for _, node := range []int{0, sys.Dim() / 3, sys.Dim() / 2, sys.Dim() - 1} {
		fmt.Printf("  node %4d: DTM %12.8f   direct %12.8f\n", node, dtmRes.X[node], exact[node])
	}
}
