// Heterogeneous: the paper's headline scenario (Figs. 11–12). Sixteen
// processors form a 4×4 mesh whose neighbour-to-neighbour delays are wildly
// unequal — the slowest directed link is about nine times slower than the
// fastest, and the delay from Pj to Pk differs from the delay from Pk to Pj.
// A synchronous domain-decomposition method pays the slowest round-trip on
// every sweep; DTM never waits, so each subdomain advances at the pace of its
// own links. This example prints the delay table of Fig. 11 and then the
// convergence of DTM and of the synchronous VTM reference on the same machine.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/sparse"
	"repro/internal/topology"
)

func main() {
	// The machine of Fig. 11.
	machine := topology.Mesh4x4Paper()
	stats := machine.Stats()
	fmt.Printf("machine %q\n", machine.Name())
	tbl := metrics.NewTable("directed N2N link delays (ms)", "from", "to", "delay", "reverse")
	for _, l := range machine.Links() {
		if l.From < l.To {
			tbl.AddRow(l.From, l.To, l.Delay, machine.LinkDelay(l.To, l.From))
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min %.0f ms, max %.0f ms (ratio %.1f), max directional asymmetry %.1f\n\n",
		stats.Min, stats.Max, stats.Max/stats.Min, stats.AsymmetryMax)

	// The workload of Fig. 12: a randomly generated grid-sparsity SPD system
	// with 1089 unknowns, regularly partitioned into 4×4 = 16 subdomains.
	sys := sparse.RandomGridSPD(33, 33, 1089)
	exact, st, err := iterative.CG(sys.A, sys.B, iterative.Config{MaxIterations: 20 * sys.Dim(), Tol: 1e-13})
	if err != nil || !st.Converged {
		log.Fatalf("reference CG failed: %v (converged=%v)", err, st.Converged)
	}
	prob, err := core.GridProblem(sys, 33, 33, 4, 4, machine)
	if err != nil {
		log.Fatalf("building the DTM problem: %v", err)
	}
	fmt.Printf("system %q: n=%d; %s\n\n", sys.Name, sys.Dim(), core.CheckTheorem(prob, 1e-9, 400))

	// Asynchronous DTM on the heterogeneous machine.
	dtmRes, err := core.Solve(context.Background(), prob, core.Config{
		CommonOptions: core.CommonOptions{
			Exact:       exact,
			StopOnError: 1e-8,
			RecordTrace: true,
		},
		MaxTime: 12000,
	})
	if err != nil {
		log.Fatalf("running DTM: %v", err)
	}
	fmt.Printf("DTM:  rms error %.3g at t = %.0f ms, reached 1e-6 at t = %.0f ms, %d solves, %d messages\n",
		dtmRes.RMSError, dtmRes.FinalTime, dtmRes.TimeToError(1e-6), dtmRes.Solves, dtmRes.Messages)

	// The synchronous special case (VTM) as the reference point: fewer sweeps,
	// but on this machine every sweep costs the slowest round-trip.
	vtmRes, err := core.Solve(context.Background(), prob, core.Config{
		CommonOptions: core.CommonOptions{
			Exact:       exact,
			StopOnError: 1e-8,
			RecordTrace: true,
		},
		Engine:        core.EngineVTM,
		MaxIterations: 2000,
	})
	if err != nil {
		log.Fatalf("running VTM: %v", err)
	}
	slowest := 0.0
	for _, l := range machine.Links() {
		if rt := l.Delay + machine.LinkDelay(l.To, l.From); rt > slowest {
			slowest = rt
		}
	}
	iterTo1e6 := math.NaN()
	for _, tp := range vtmRes.Trace {
		if tp.RMSError <= 1e-6 {
			iterTo1e6 = tp.Time
			break
		}
	}
	fmt.Printf("VTM:  rms error %.3g after %d synchronous sweeps; reaching 1e-6 took %.0f sweeps ~ %.0f ms on this machine (slowest round-trip %.0f ms per sweep)\n",
		vtmRes.RMSError, vtmRes.Iterations, iterTo1e6, iterTo1e6*slowest, slowest)
	fmt.Println("\nDTM needs more local solves, but no processor ever waits for the slowest link — the paper's trade-off in one table.")
}
