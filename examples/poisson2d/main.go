// Poisson 2-D: solve a 65×65 grid Laplacian (4225 unknowns — the largest
// system of the paper's Section 7) with DTM on the 64-processor 8×8 mesh of
// Fig. 13, whose directed link delays are uniformly distributed between 10 and
// 100 ms, and print the convergence curve the paper plots in Fig. 14.
//
// Run with:
//
//	go run ./examples/poisson2d            # the full 65x65 problem
//	go run ./examples/poisson2d -nx 33     # a faster 33x33 run
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/sparse"
	"repro/internal/topology"
)

func main() {
	nx := flag.Int("nx", 65, "grid side length (n = nx*nx unknowns)")
	maxTime := flag.Float64("maxtime", 20000, "virtual horizon in ms")
	flag.Parse()

	// The workload: a 5-point Laplacian with a small SPD shift on an nx×nx
	// grid, the canonical "regularly partitioned sparse SPD system".
	sys := sparse.Poisson2D(*nx, *nx, 0.05)
	fmt.Printf("system %q: n=%d, nnz=%d\n", sys.Name, sys.Dim(), sys.A.NNZ())

	// Reference solution from conjugate gradients (tight tolerance).
	exact, st, err := iterative.CG(sys.A, sys.B, iterative.Config{MaxIterations: 20 * sys.Dim(), Tol: 1e-13})
	if err != nil || !st.Converged {
		log.Fatalf("reference CG failed: %v (converged=%v)", err, st.Converged)
	}

	// The machine: 64 processors in an 8×8 mesh, delays ~ U[10,100] ms.
	machine := topology.Mesh8x8Paper()
	stats := machine.Stats()
	fmt.Printf("machine %q: %d directed links, delays %.0f–%.0f ms (mean %.0f)\n",
		machine.Name(), stats.Count, stats.Min, stats.Max, stats.Mean)

	// Partition the grid into an 8×8 block grid of subdomains by EVS and map
	// block (bx, by) onto mesh processor (bx, by).
	prob, err := core.GridProblem(sys, *nx, *nx, 8, 8, machine)
	if err != nil {
		log.Fatalf("building the DTM problem: %v", err)
	}
	fmt.Println(core.CheckTheorem(prob, 1e-9, 400))

	res, err := core.Solve(context.Background(), prob, core.Config{
		CommonOptions: core.CommonOptions{
			Exact:       exact,
			StopOnError: 1e-8,
			RecordTrace: true,
		},
		MaxTime: *maxTime,
	})
	if err != nil {
		log.Fatalf("running DTM: %v", err)
	}

	// Print the Fig. 14-style convergence curve.
	curve := metrics.Series{Name: "rms-error"}
	for _, tp := range res.Trace {
		curve.Append(tp.Time, tp.RMSError)
	}
	curve = curve.Resample(25)
	tbl := metrics.NewTable("RMS error vs virtual time (ms)", "t", "rms-error")
	for _, p := range curve.Points {
		tbl.AddRow(p.T, p.V)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal RMS error %.3g (relative residual %.3g) at t = %.0f ms\n", res.RMSError, res.Residual, res.FinalTime)
	fmt.Printf("%d local solves, %d neighbour-to-neighbour messages, converged=%v\n", res.Solves, res.Messages, res.Converged)
}
