// Package repro is a from-scratch Go reproduction of "Directed Transmission
// Method, a fully asynchronous approach to solve sparse linear systems in
// parallel" (Fei Wei & Huazhong Yang, ACM SPAA 2008).
//
// The library lives under internal/ (see DESIGN.md for the full inventory):
//
//   - internal/sparse, internal/dense, internal/spectral — the numerical
//     substrate (CSR matrices, MatrixMarket I/O, Cholesky/LU/eigen,
//     definiteness certification) plus the problem-source registry: one
//     canonical spec-string grammar (sparse.ParseSource) naming every way a
//     system enters the repo — generated grids ("grid:", "saddle:"), random
//     geometric Yao-spanner Laplacians ("spanner:") and content-hash-pinned
//     MatrixMarket files ("mm:<path>@<fnv64>", verified on every build and
//     refused on mismatch with a typed error);
//   - internal/factor — the pluggable local-factorisation subsystem: one
//     LocalSolver interface over the registered backends dense-cholesky,
//     dense-lu, sparse-cholesky and sparse-ldlt (up-looking factorisations
//     with per-block ND/RCM/AMD fill-reducing orderings) and sparse-supernodal
//     (blocked trapezoidal panels over the postordered elimination tree,
//     with independent subtrees factorised in parallel, deterministically),
//     plus the auto policy every subdomain and block solver uses, whose
//     non-SPD fallback chain is sparse-Cholesky → sparse-LDLᵀ → dense LU.
//     Solves are built for factor-once/solve-many: every sparse backend
//     sweeps k right-hand sides as one batched panel (SolveBatchTo,
//     byte-identical per RHS to k scalar sweeps; the supernodal panels run
//     the packed rank-k kernels — an AVX microkernel on amd64), the
//     supernodal backend level-schedules a single large triangular solve
//     across elimination-tree level sets, and a concurrency-safe LRU factor
//     cache (pattern+values keyed, byte-budgeted) serves repeated
//     factorisations, optionally shared process-wide via EnableSharedCache;
//   - internal/graph, internal/partition — the electric graph of a symmetric
//     system and its Electric Vertex Splitting (wire tearing);
//   - internal/dtl, internal/topology, internal/netsim — directed transmission
//     lines, heterogeneous machines (behind the machine registry
//     topology.ParseTopology: uniform, ring, the paper's mesh4x4/mesh8x8,
//     and random geometric "yao:" fabrics), and the discrete-event network
//     simulator;
//   - internal/chaos — the deterministic fault-injection model: a parsed
//     fault spec (drop/duplicate/jitter probabilities, link-down and
//     slow-link windows, crash-restart schedules) and the seeded per-link
//     controller that assigns every send a reproducible fate;
//   - internal/core — the DTM solver itself behind the context-first
//     core.Solve(ctx, p, cfg) entry point, whose Config selects the engine:
//     the asynchronous DES engine (default), the live goroutine engine, the
//     synchronous VTM special case and the mixed GALS variant; including the
//     recovery protocol the engines run under injected faults: sequence
//     numbers with last-writer-wins dedup, watchdog retransmission with
//     backoff, and crash-restart from periodic snapshots (the pre-Config
//     SolveDTM/SolveVTM/SolveMixed/SolveLive wrappers remain, deprecated and
//     byte-identical);
//   - internal/transport — the datagram fabric distributed DTM runs on: an
//     in-process channel implementation and a length-prefixed binary TCP
//     implementation with reconnect backoff, under one conformance-tested
//     Transport interface, plus the chaos fault decorator;
//   - internal/dist — coordinator/worker distributed DTM over a Transport:
//     deterministic re-tearing from a versioned ProblemSpec (legacy grid
//     fields or a v2 {source, nparts, topology} registry spec), sharded
//     subdomain
//     ownership, watchdog retransmission and the distributed stopping rule,
//     plus worker failover: heartbeats carrying wave frontiers and boundary
//     snapshots, jittered coordinator leases, rendezvous-hashed ownership
//     reassignment under fenced epochs (stale-epoch and dead-incarnation
//     packets are dropped and counted), snapshot-seeded adoption by the
//     survivors, and rejoin of restarted workers at a higher incarnation;
//   - internal/iterative — the classical baselines (CG, Jacobi, Gauss–Seidel,
//     SOR, synchronous and asynchronous block-Jacobi);
//   - internal/experiments — one entry point per figure/table of the paper's
//     evaluation plus the comparisons and ablations of DESIGN.md.
//
// The executables cmd/dtmsolve, cmd/dtmbench, cmd/dtmgen and cmd/dtmd (the
// distributed DTM server) and the programs under examples/ exercise the same
// packages; bench_test.go at the module root regenerates every experiment as
// a testing.B benchmark.
package repro
