package main

import (
	"math"
	"strings"
	"testing"

	"repro/internal/benchjson"
)

func bench(name string, ns, allocs float64) benchjson.Record {
	return benchjson.Record{Experiment: name, NsPerOp: ns, AllocsOp: allocs}
}

func defaultThresholds() thresholds { return thresholds{maxNsRegress: 0.25, maxAllocsRegress: 0.10} }

func TestDiffPassesWithinNoise(t *testing.T) {
	baseline := benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 20000), bench("fig14", 300e6, 90000)}}
	current := benchjson.File{Results: []benchjson.Record{bench("fig12", 110e6, 21000), bench("fig14", 290e6, 90000)}}
	rows, failed := diff(baseline, current, defaultThresholds(), nil)
	if failed {
		t.Fatalf("within-noise run failed: %+v", rows)
	}
	for _, r := range rows {
		if r.Verdict != "ok" {
			t.Errorf("%s verdict %q, want ok", r.Experiment, r.Verdict)
		}
	}
}

func TestDiffFailsOnTimeRegression(t *testing.T) {
	baseline := benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 20000)}}
	// A synthetic 2× slowdown — the demonstration the gate exists for.
	current := benchjson.File{Results: []benchjson.Record{bench("fig12", 200e6, 20000)}}
	rows, failed := diff(baseline, current, defaultThresholds(), nil)
	if !failed {
		t.Fatal("2x time regression passed the gate")
	}
	if !rows[0].Failed || !strings.Contains(rows[0].Verdict, "FAIL time") {
		t.Errorf("verdict %q, want a time failure", rows[0].Verdict)
	}
	if rows[0].NsDelta != 1.0 {
		t.Errorf("NsDelta = %g, want 1.0 (a 100%% regression)", rows[0].NsDelta)
	}
}

func TestDiffFailsOnAllocRegression(t *testing.T) {
	baseline := benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 20000)}}
	current := benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 23000)}} // +15% allocs
	_, failed := diff(baseline, current, defaultThresholds(), nil)
	if !failed {
		t.Fatal("+15% alloc regression passed the gate (limit is +10%)")
	}
}

func TestDiffBoundaries(t *testing.T) {
	baseline := benchjson.File{Results: []benchjson.Record{bench("a", 100, 100)}}
	// Exactly at the limits must pass (the gate fails strictly past them).
	current := benchjson.File{Results: []benchjson.Record{bench("a", 125, 110)}}
	if _, failed := diff(baseline, current, defaultThresholds(), nil); failed {
		t.Error("exactly-at-threshold run failed")
	}
	current = benchjson.File{Results: []benchjson.Record{bench("a", 125.1, 110)}}
	if _, failed := diff(baseline, current, defaultThresholds(), nil); !failed {
		t.Error("past-threshold time run passed")
	}
}

func TestDiffFailsOnMissingExperiment(t *testing.T) {
	baseline := benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 20000), bench("scale-sparse", 400e6, 40000)}}
	current := benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 20000)}}
	rows, failed := diff(baseline, current, defaultThresholds(), nil)
	if !failed {
		t.Fatal("a baseline experiment vanished and the gate passed")
	}
	found := false
	for _, r := range rows {
		if r.Experiment == "scale-sparse" && r.Failed {
			found = true
		}
	}
	if !found {
		t.Errorf("missing experiment not reported: %+v", rows)
	}
}

// TestDiffReportsNewExperiments pins the informational path: an experiment
// present in the fresh run but absent from the committed baseline must be
// reported without failing the gate (exit 0), so a PR adding a benchmark
// needs no two-step baseline churn.
func TestDiffReportsNewExperiments(t *testing.T) {
	baseline := benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 20000)}}
	current := benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 20000), bench("brand-new", 1e6, 10)}}
	rows, failed := diff(baseline, current, defaultThresholds(), nil)
	if failed {
		t.Fatal("a new experiment must not fail the gate")
	}
	if len(rows) != 2 || rows[1].Experiment != "brand-new" || !strings.HasPrefix(rows[1].Verdict, "new ") {
		t.Errorf("new experiment not reported: %+v", rows)
	}
	if rows[1].Failed {
		t.Error("new experiment marked as failed")
	}
	md := renderMarkdown(rows, defaultThresholds(), failed)
	if !strings.Contains(md, "brand-new") || !strings.Contains(md, "do not gate") {
		t.Errorf("markdown does not call out the informational experiment:\n%s", md)
	}
}

// TestValidateRejectsUnusableMeasurements pins the guard against broken
// measurement files: NaN, zero or negative timings must be rejected up front
// with an error naming the file and experiment, never silently compared.
func TestValidateRejectsUnusableMeasurements(t *testing.T) {
	cases := []struct {
		name string
		rec  benchjson.Record
		want string
	}{
		{"nan-ns", bench("fig12", math.NaN(), 100), "ns_per_op"},
		{"zero-ns", bench("fig12", 0, 100), "ns_per_op"},
		{"negative-ns", bench("fig12", -5, 100), "ns_per_op"},
		{"inf-ns", bench("fig12", math.Inf(1), 100), "ns_per_op"},
		{"nan-allocs", bench("fig12", 100, math.NaN()), "allocs_per_op"},
		{"unnamed", bench("", 100, 100), "no experiment name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validate(benchjson.File{Results: []benchjson.Record{tc.rec}}, "BENCH_dtm.json")
			if err == nil {
				t.Fatalf("record %+v passed validation", tc.rec)
			}
			if !strings.Contains(err.Error(), tc.want) || !strings.Contains(err.Error(), "BENCH_dtm.json") {
				t.Errorf("error %q does not name the problem (%q) and the file", err, tc.want)
			}
		})
	}
	good := benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 0)}}
	if err := validate(good, "x.json"); err != nil {
		t.Errorf("a zero-alloc measurement is legitimate, got %v", err)
	}
}

// TestDiffSkipExcludesExperiment pins the -skip escape hatch: a skipped
// experiment never gates — not when it regresses, and not when it is missing
// from the current run entirely (the single-core-host case for the
// distributed experiment) — while everything else still gates normally.
func TestDiffSkipExcludesExperiment(t *testing.T) {
	skip := map[string]bool{"compare-distributed": true}
	baseline := benchjson.File{Results: []benchjson.Record{
		bench("fig12", 100e6, 20000), bench("compare-distributed", 100e6, 20000),
	}}

	// Regressed but skipped: reported, not failed.
	current := benchjson.File{Results: []benchjson.Record{
		bench("fig12", 100e6, 20000), bench("compare-distributed", 400e6, 90000),
	}}
	rows, failed := diff(baseline, current, defaultThresholds(), skip)
	if failed {
		t.Fatalf("skipped regression failed the gate: %+v", rows)
	}
	for _, r := range rows {
		if r.Experiment == "compare-distributed" && r.Verdict != "skipped (-skip)" {
			t.Errorf("verdict %q, want skipped", r.Verdict)
		}
	}

	// Missing and skipped: still passes.
	current = benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 20000)}}
	if _, failed := diff(baseline, current, defaultThresholds(), skip); failed {
		t.Fatal("skipped missing experiment failed the gate")
	}

	// A non-skipped regression must still fail alongside a skipped one.
	current = benchjson.File{Results: []benchjson.Record{bench("fig12", 300e6, 20000)}}
	if _, failed := diff(baseline, current, defaultThresholds(), skip); !failed {
		t.Fatal("-skip must not mask other experiments' regressions")
	}
}

func TestFracZeroBaseline(t *testing.T) {
	if f := frac(0, 0); f != 0 {
		t.Errorf("frac(0,0) = %g, want 0", f)
	}
	if f := frac(0, 5); f != 1 {
		t.Errorf("frac(0,5) = %g, want 1 (treated as a full regression)", f)
	}
}

func TestRenderMarkdownShape(t *testing.T) {
	baseline := benchjson.File{Results: []benchjson.Record{bench("fig12", 100e6, 20000)}}
	current := benchjson.File{Results: []benchjson.Record{bench("fig12", 250e6, 20000)}}
	rows, failed := diff(baseline, current, defaultThresholds(), nil)
	md := renderMarkdown(rows, defaultThresholds(), failed)
	for _, want := range []string{"## Benchmark regression gate", "| fig12 |", "FAIL", "re-baseline"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown report lacks %q:\n%s", want, md)
		}
	}
}
