// Command benchdiff is the CI benchmark-regression gate: it compares a fresh
// `dtmbench -benchjson` measurement against the committed baseline
// (BENCH_dtm.json) and fails — exit status 1 — when any experiment's wall time
// or allocation count regresses past the thresholds. The comparison is also
// rendered as a Markdown table so CI can publish it as a job summary.
//
// Usage:
//
//	dtmbench -benchjson BENCH_current.json -quick
//	benchdiff -baseline BENCH_dtm.json -current BENCH_current.json \
//	          -summary "$GITHUB_STEP_SUMMARY"
//
// To re-baseline after an intentional performance change, regenerate the
// committed file on a quiet machine and commit it:
//
//	make bench   # rewrites BENCH_dtm.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/benchjson"
)

// thresholds are fractional regressions: 0.25 means a 25% slowdown fails.
type thresholds struct {
	maxNsRegress     float64
	maxAllocsRegress float64
}

// row is one experiment's comparison.
type row struct {
	Experiment           string
	BaseNs, CurNs        float64
	BaseAllocs, CurAlloc float64
	NsDelta, AllocsDelta float64 // fractional change vs baseline
	Verdict              string  // "ok", "FAIL time", "FAIL allocs", "missing"
	Failed               bool
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_dtm.json", "committed baseline JSON")
		currentPath  = flag.String("current", "", "freshly measured JSON (required)")
		summaryPath  = flag.String("summary", "", "file to append the Markdown report to (e.g. $GITHUB_STEP_SUMMARY)")
		maxNs        = flag.Float64("max-ns-regress", 0.25, "fail when ns_per_op regresses by more than this fraction")
		maxAllocs    = flag.Float64("max-allocs-regress", 0.10, "fail when allocs_per_op regresses by more than this fraction")
	)
	skip := make(map[string]bool)
	flag.Func("skip", "experiment to exclude from the gate (repeatable, or comma-separated); skipped rows are reported but never fail", func(v string) error {
		for _, name := range strings.Split(v, ",") {
			if name = strings.TrimSpace(name); name != "" {
				skip[name] = true
			}
		}
		return nil
	})
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := benchjson.Read(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	current, err := benchjson.Read(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if err := validate(baseline, *baselinePath); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if err := validate(current, *currentPath); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	rows, failed := diff(baseline, current, thresholds{*maxNs, *maxAllocs}, skip)
	report := renderMarkdown(rows, thresholds{*maxNs, *maxAllocs}, failed)
	fmt.Print(report)
	if *summaryPath != "" {
		f, err := os.OpenFile(*summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: opening summary file: %v\n", err)
			os.Exit(2)
		}
		if _, err := f.WriteString(report); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: writing summary: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}
	if failed {
		os.Exit(1)
	}
}

// validate rejects measurement files with unusable timings before any
// comparison runs. A NaN, zero or negative ns_per_op would otherwise slip
// through the gate silently: NaN compares false against every threshold and a
// zero baseline turns any real measurement into a 100% "regression". Both
// mean the measurement itself is broken — a truncated file, a benchmark that
// never ran, or a corrupted re-baseline — and the gate must say so instead of
// passing or failing on garbage.
func validate(f benchjson.File, path string) error {
	for _, r := range f.Results {
		if r.Experiment == "" {
			return fmt.Errorf("%s: a result has no experiment name", path)
		}
		if math.IsNaN(r.NsPerOp) || math.IsInf(r.NsPerOp, 0) || r.NsPerOp <= 0 {
			return fmt.Errorf("%s: experiment %q has unusable ns_per_op %g — the measurement is broken, re-run `make bench` on a quiet machine", path, r.Experiment, r.NsPerOp)
		}
		if math.IsNaN(r.AllocsOp) || math.IsInf(r.AllocsOp, 0) || r.AllocsOp < 0 {
			return fmt.Errorf("%s: experiment %q has unusable allocs_per_op %g", path, r.Experiment, r.AllocsOp)
		}
	}
	return nil
}

// diff compares every baseline experiment against the current measurement.
// A baseline experiment missing from the current run fails the gate (the
// perf frontier must not silently shrink); experiments new in the current run
// are informational — reported in the summary, exit 0 — so a PR that adds a
// benchmark does not need a two-step baseline dance to land. Experiments in
// skip never gate: their rows are reported as skipped whether present,
// missing or regressed — the escape hatch for legs a runner cannot execute
// (e.g. the distributed experiment on a single-core host).
func diff(baseline, current benchjson.File, th thresholds, skip map[string]bool) ([]row, bool) {
	cur := make(map[string]benchjson.Record, len(current.Results))
	for _, r := range current.Results {
		cur[r.Experiment] = r
	}
	var rows []row
	anyFailed := false
	for _, base := range baseline.Results {
		r := row{Experiment: base.Experiment, BaseNs: base.NsPerOp, BaseAllocs: base.AllocsOp}
		c, ok := cur[base.Experiment]
		if skip[base.Experiment] {
			if ok {
				r.CurNs, r.CurAlloc = c.NsPerOp, c.AllocsOp
				r.NsDelta = frac(base.NsPerOp, c.NsPerOp)
				r.AllocsDelta = frac(base.AllocsOp, c.AllocsOp)
			}
			r.Verdict = "skipped (-skip)"
		} else if !ok {
			r.Verdict, r.Failed = "missing from current run", true
		} else {
			r.CurNs, r.CurAlloc = c.NsPerOp, c.AllocsOp
			r.NsDelta = frac(base.NsPerOp, c.NsPerOp)
			r.AllocsDelta = frac(base.AllocsOp, c.AllocsOp)
			switch {
			case r.NsDelta > th.maxNsRegress:
				r.Verdict, r.Failed = fmt.Sprintf("FAIL time +%.0f%% (limit +%.0f%%)", 100*r.NsDelta, 100*th.maxNsRegress), true
			case r.AllocsDelta > th.maxAllocsRegress:
				r.Verdict, r.Failed = fmt.Sprintf("FAIL allocs +%.0f%% (limit +%.0f%%)", 100*r.AllocsDelta, 100*th.maxAllocsRegress), true
			default:
				r.Verdict = "ok"
			}
		}
		anyFailed = anyFailed || r.Failed
		rows = append(rows, r)
		delete(cur, base.Experiment)
	}
	for _, c := range current.Results {
		if _, stillNew := cur[c.Experiment]; stillNew {
			rows = append(rows, row{
				Experiment: c.Experiment, CurNs: c.NsPerOp, CurAlloc: c.AllocsOp,
				Verdict: "new (informational, no baseline yet)",
			})
		}
	}
	return rows, anyFailed
}

// frac returns the fractional change from base to cur ((cur-base)/base),
// treating a zero baseline as unchanged unless the current value is nonzero.
func frac(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return (cur - base) / base
}

func renderMarkdown(rows []row, th thresholds, failed bool) string {
	var b strings.Builder
	b.WriteString("## Benchmark regression gate\n\n")
	b.WriteString("| experiment | base ns/op | cur ns/op | Δ time | base allocs | cur allocs | Δ allocs | verdict |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %+.1f%% | %s | %s | %+.1f%% | %s |\n",
			r.Experiment, human(r.BaseNs), human(r.CurNs), 100*r.NsDelta,
			human(r.BaseAllocs), human(r.CurAlloc), 100*r.AllocsDelta, r.Verdict)
	}
	newCount := 0
	for _, r := range rows {
		if strings.HasPrefix(r.Verdict, "new ") {
			newCount++
		}
	}
	if newCount > 0 {
		fmt.Fprintf(&b, "\n%d experiment(s) are new in this run and do not gate; they join the baseline at the next `make bench` re-baseline.\n", newCount)
	}
	if failed {
		fmt.Fprintf(&b, "\n**FAIL** — at least one experiment regressed past the limits (time +%.0f%%, allocs +%.0f%%). "+
			"If the regression is intentional, re-baseline with `make bench` and commit BENCH_dtm.json.\n",
			100*th.maxNsRegress, 100*th.maxAllocsRegress)
	} else {
		fmt.Fprintf(&b, "\nPASS — no experiment regressed past the limits (time +%.0f%%, allocs +%.0f%%).\n",
			100*th.maxNsRegress, 100*th.maxAllocsRegress)
	}
	return b.String()
}

// human renders a count with engineering suffixes so the table stays legible.
func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
