// Command dtmsolve solves a sparse SPD linear system with the Directed
// Transmission Method (or one of the baselines) and prints the solve
// statistics.
//
// The system is either generated (-gen poisson2d -nx 33 -ny 33), named by a
// problem-source string from the sparse registry (-source "spanner:n=289,k=6",
// -source "mm:A.mtx@<fnv64 hash>", …), or read from files (-matrix A.mtx
// -rhs b.vec, MatrixMarket format — general, symmetric and pattern coordinate
// files as well as array files are accepted).
//
// Usage examples:
//
//	dtmsolve -gen poisson2d -nx 33 -ny 33 -method dtm -parts 16 -topo mesh4x4
//	dtmsolve -source "spanner:n=289,k=6,seed=1,leak=0.05" -method dtm -parts 8 -topo "yao:k=6"
//	dtmsolve -gen random -n 500 -method cg
//	dtmsolve -gen saddle -nx 128 -ny 128 -method direct
//	dtmsolve -matrix A.mtx -rhs b.vec -method vtm -parts 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/factor"
	"repro/internal/graph"
	"repro/internal/iterative"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/topology"
)

type options struct {
	gen         string
	source      string
	nx, ny      int
	n           int
	seed        int64
	matrix      string
	rhs         string
	method      string
	parts       int
	topo        string
	partitioner string
	maxTime     float64
	maxIter     int
	tol         float64
	localSolver string
	ordering    string
	nrhs        int
	factorCache bool
	printX      bool
	faults      string
	timeout     time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.gen, "gen", "", "generator: poisson2d, poisson3d, random, random-grid, resistor, tridiag, saddle")
	flag.StringVar(&o.source, "source", "", fmt.Sprintf("problem-source string (%v; e.g. \"spanner:n=289,k=6\" or \"mm:A.mtx@<hash>\"); alternative to -gen/-matrix", sparse.RegisteredSources()))
	flag.IntVar(&o.nx, "nx", 33, "grid width for grid generators")
	flag.IntVar(&o.ny, "ny", 33, "grid height for grid generators")
	flag.IntVar(&o.n, "n", 500, "dimension for non-grid generators")
	flag.Int64Var(&o.seed, "seed", 1, "random seed for the generators")
	flag.StringVar(&o.matrix, "matrix", "", "matrix file (MatrixMarket .mtx)")
	flag.StringVar(&o.rhs, "rhs", "", "right-hand-side file (MatrixMarket array or coordinate)")
	flag.StringVar(&o.method, "method", "dtm", "solver: dtm, vtm, mixed, live, direct, cg, pcg, jacobi, gauss-seidel, sor, block-jacobi, async-jacobi")
	flag.IntVar(&o.parts, "parts", 4, "number of subdomains / blocks for the distributed solvers")
	flag.StringVar(&o.topo, "topo", "uniform", "machine: uniform, ring, mesh4x4, mesh8x8, yao:…, torus")
	flag.StringVar(&o.topo, "topology", "uniform", "alias for -topo")
	flag.StringVar(&o.partitioner, "partitioner", "levelset", "graph partitioner for the distributed solvers: levelset, bisection, strips")
	flag.Float64Var(&o.maxTime, "maxtime", 10000, "virtual time horizon for dtm/async-jacobi (topology time units)")
	flag.IntVar(&o.maxIter, "maxiter", 5000, "iteration bound for the discrete-time solvers")
	flag.Float64Var(&o.tol, "tol", 1e-8, "stopping tolerance")
	flag.StringVar(&o.localSolver, "localsolver", "", fmt.Sprintf("local-factorisation backend for the block/subdomain solvers: one of %v (default: the factor package default, %q)", factor.Backends(), factor.Default()))
	flag.StringVar(&o.ordering, "ordering", "", "fill-reducing ordering the sparse backends use: natural, rcm, amd, nd or auto (default: auto — nd/rcm for grid stencils by size, amd for irregular patterns)")
	flag.IntVar(&o.nrhs, "nrhs", 1, "number of right-hand sides for -method direct: the loaded/default RHS plus generated extras, solved as one batched panel (-rhs stays the RHS-file flag)")
	flag.BoolVar(&o.factorCache, "factorcache", false, "route factorisations through the shared factor cache and report its hit statistics")
	flag.BoolVar(&o.printX, "print-x", false, "print the solution vector")
	flag.StringVar(&o.faults, "faults", "", `fault-injection spec for dtm/mixed/live, e.g. "seed=7,drop=0.05,dup=0.01,jitter=0.5,down=2>3@100:400,crash=5@400+300,snap=100" (see internal/chaos)`)
	flag.DurationVar(&o.timeout, "timeout", 0, "wall-clock deadline; for -method live this is the run's wall-time budget (default 3s), for the others a hard cap on the whole solve")
	flag.Parse()

	if o.localSolver != "" && !factor.Known(o.localSolver) {
		fmt.Fprintf(os.Stderr, "dtmsolve: unknown local solver %q (have %v)\n", o.localSolver, factor.Backends())
		os.Exit(2)
	}
	if o.ordering != "" {
		ord, err := factor.ParseOrdering(o.ordering)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtmsolve: %v\n", err)
			os.Exit(2)
		}
		if err := factor.SetDefaultOrdering(ord); err != nil {
			fmt.Fprintf(os.Stderr, "dtmsolve: %v\n", err)
			os.Exit(2)
		}
	}
	if o.nrhs < 1 {
		fmt.Fprintln(os.Stderr, "dtmsolve: -nrhs must be at least 1")
		os.Exit(2)
	}
	if o.nrhs > 1 && o.method != "direct" {
		fmt.Fprintf(os.Stderr, "dtmsolve: -nrhs applies to -method direct, not %q\n", o.method)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "dtmsolve: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	sys, err := loadSystem(o)
	if err != nil {
		return err
	}
	fmt.Printf("system %q: n=%d, nnz=%d, symmetric=%v\n", sys.Name, sys.Dim(), sys.A.NNZ(), sys.A.IsSymmetric(1e-12))

	if o.factorCache {
		factor.EnableSharedCache(1 << 30)
		defer factor.DisableSharedCache()
	}

	if o.timeout > 0 && o.method != "live" {
		// The live engine honours the deadline cooperatively (it returns a
		// partial result); for everything else the timeout is a hard cap on
		// the process.
		time.AfterFunc(o.timeout, func() {
			fmt.Fprintf(os.Stderr, "dtmsolve: %v deadline exceeded\n", o.timeout)
			os.Exit(1)
		})
	}

	start := time.Now()
	x, summary, err := solve(o, sys)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	rel := sys.A.Residual(x, sys.B).Norm2() / sys.B.Norm2()
	fmt.Printf("method=%s  %s\n", o.method, summary)
	fmt.Printf("relative residual %.3g, wall time %v\n", rel, elapsed.Round(time.Millisecond))
	if o.factorCache {
		st := factor.SharedCache().Stats()
		fmt.Printf("factor cache: %d hits / %d misses, %d entries, %.1f MiB resident, %d evictions\n",
			st.Hits, st.Misses, st.Entries, float64(st.UsedBytes)/(1<<20), st.Evictions)
	}
	if o.printX {
		for i, v := range x {
			fmt.Printf("x[%d] = %.10g\n", i, v)
		}
	}
	return nil
}

func loadSystem(o options) (sparse.System, error) {
	if o.source != "" {
		if o.gen != "" || o.matrix != "" {
			return sparse.System{}, fmt.Errorf("-source excludes -gen and -matrix")
		}
		src, err := sparse.ParseSource(o.source)
		if err != nil {
			return sparse.System{}, err
		}
		sys, _, err := src.Build()
		return sys, err
	}
	if o.matrix != "" {
		mf, err := os.Open(o.matrix)
		if err != nil {
			return sparse.System{}, err
		}
		defer mf.Close()
		a, err := sparse.ReadMatrix(mf)
		if err != nil {
			return sparse.System{}, fmt.Errorf("reading %s: %w", o.matrix, err)
		}
		var b sparse.Vec
		if o.rhs != "" {
			rf, err := os.Open(o.rhs)
			if err != nil {
				return sparse.System{}, err
			}
			defer rf.Close()
			b, err = sparse.ReadVec(rf)
			if err != nil {
				return sparse.System{}, fmt.Errorf("reading %s: %w", o.rhs, err)
			}
		} else {
			// Default right-hand side: all ones, the standard smoke-test load.
			b = sparse.NewVec(a.Rows())
			b.Fill(1)
		}
		if len(b) != a.Rows() {
			return sparse.System{}, fmt.Errorf("matrix is %d-dimensional but the right-hand side has %d entries", a.Rows(), len(b))
		}
		return sparse.System{A: a, B: b, Name: o.matrix}, nil
	}
	switch o.gen {
	case "poisson2d":
		return sparse.Poisson2D(o.nx, o.ny, 0.05), nil
	case "poisson3d":
		return sparse.Poisson3D(o.nx, o.ny, o.nx, 0.05), nil
	case "random":
		return sparse.RandomSPD(o.n, 0.02, o.seed), nil
	case "random-grid":
		return sparse.RandomGridSPD(o.nx, o.ny, o.seed), nil
	case "resistor":
		return sparse.ResistorNetwork(o.nx, o.ny, o.seed), nil
	case "tridiag":
		return sparse.Tridiagonal(o.n, 2.1, -1), nil
	case "saddle":
		// Symmetric quasi-definite (indefinite) — the non-SPD workload the
		// sparse LDLT backend exists for; solve it with -method direct.
		return sparse.SaddlePoisson2D(o.nx, o.ny, 1e-2), nil
	case "":
		return sparse.System{}, fmt.Errorf("either -gen or -matrix is required")
	default:
		return sparse.System{}, fmt.Errorf("unknown generator %q", o.gen)
	}
}

func machine(o options) (*topology.Topology, error) {
	// torus predates the registry and keeps its sizing rule here; everything
	// else resolves through topology.ParseTopology.
	if o.topo == "torus" {
		side := 2
		for side*side < o.parts {
			side++
		}
		return topology.TorusUniformRandom(side, side, 10, 99, 1, fmt.Sprintf("torus %dx%d", side, side)), nil
	}
	return topology.ParseTopology(o.topo, o.parts, 10)
}

// assignment picks the graph partitioner requested on the command line.
func assignment(o options, g *graph.Electric) (partition.Assignment, error) {
	switch o.partitioner {
	case "levelset":
		return partition.LevelSetGrow(g, o.parts), nil
	case "bisection":
		return partition.RecursiveBisection(g, o.parts), nil
	case "strips":
		return partition.Strips(g.Order(), o.parts), nil
	default:
		return partition.Assignment{}, fmt.Errorf("unknown partitioner %q", o.partitioner)
	}
}

func distributedProblem(o options, sys sparse.System) (*core.Problem, error) {
	topo, err := machine(o)
	if err != nil {
		return nil, err
	}
	if topo.N() < o.parts {
		return nil, fmt.Errorf("topology %s has %d processors but %d parts were requested", topo.Name(), topo.N(), o.parts)
	}
	g, err := graph.FromSystem(sys.A, sys.B)
	if err != nil {
		return nil, err
	}
	assign, err := assignment(o, g)
	if err != nil {
		return nil, err
	}
	res, err := partition.EVS(g, assign, partition.Options{})
	if err != nil {
		return nil, err
	}
	return core.NewProblem(sys, res, topo, nil)
}

// faultSummary renders the fault statistics of a run, or "" without faults.
func faultSummary(f *core.FaultStats) string {
	if f == nil {
		return ""
	}
	return fmt.Sprintf("\nfaults: %d dropped, %d duplicated, %d delayed, %d retransmissions, %d crashes / %d restarts (%d snapshots)",
		f.Dropped, f.Duplicated, f.Delayed, f.Retransmissions, f.Crashes, f.Restarts, f.Snapshots)
}

func solve(o options, sys sparse.System) (sparse.Vec, string, error) {
	var spec *chaos.Spec
	if o.faults != "" {
		var err error
		if spec, err = chaos.ParseSpec(o.faults); err != nil {
			return nil, "", err
		}
		switch o.method {
		case "dtm", "mixed", "live":
		default:
			return nil, "", fmt.Errorf("-faults applies to methods dtm, mixed and live, not %q", o.method)
		}
	}
	switch o.method {
	case "dtm":
		prob, err := distributedProblem(o, sys)
		if err != nil {
			return nil, "", err
		}
		res, err := core.Solve(context.Background(), prob, core.Config{
			CommonOptions: core.CommonOptions{Tol: o.tol, LocalSolver: o.localSolver, Faults: spec},
			MaxTime:       o.maxTime,
		})
		if err != nil {
			return nil, "", err
		}
		return res.X, fmt.Sprintf("converged=%v at t=%.0f, %d local solves, %d messages, twin gap %.3g%s",
			res.Converged, res.FinalTime, res.Solves, res.Messages, res.TwinGap, faultSummary(res.Faults)), nil
	case "vtm":
		prob, err := distributedProblem(o, sys)
		if err != nil {
			return nil, "", err
		}
		res, err := core.Solve(context.Background(), prob, core.Config{
			CommonOptions: core.CommonOptions{Tol: o.tol, LocalSolver: o.localSolver},
			Engine:        core.EngineVTM,
			MaxIterations: o.maxIter,
		})
		if err != nil {
			return nil, "", err
		}
		return res.X, fmt.Sprintf("converged=%v after %d synchronous sweeps, twin gap %.3g",
			res.Converged, res.Iterations, res.TwinGap), nil
	case "mixed":
		prob, err := distributedProblem(o, sys)
		if err != nil {
			return nil, "", err
		}
		res, err := core.Solve(context.Background(), prob, core.Config{
			CommonOptions: core.CommonOptions{Tol: o.tol, LocalSolver: o.localSolver, Faults: spec},
			Engine:        core.EngineMixed,
			MaxTime:       o.maxTime,
			AsyncWindow:   o.maxTime / 20,
			SyncSweeps:    1,
		})
		if err != nil {
			return nil, "", err
		}
		return res.X, fmt.Sprintf("converged=%v at t=%.0f after %d async phases and %d sync sweeps, %d local solves, %d messages%s",
			res.Converged, res.FinalTime, res.AsyncPhases, res.SyncSweepsDone, res.Solves, res.Messages, faultSummary(res.Faults)), nil
	case "live":
		prob, err := distributedProblem(o, sys)
		if err != nil {
			return nil, "", err
		}
		wall := 3 * time.Second
		if o.timeout > 0 {
			wall = o.timeout
		}
		res, err := core.Solve(context.Background(), prob, core.Config{
			CommonOptions: core.CommonOptions{
				Tol: o.tol, LocalSolver: o.localSolver, Faults: spec,
				MaxWallTime: wall,
			},
			Engine:    core.EngineLive,
			TimeScale: 20 * time.Microsecond,
		})
		if errors.Is(err, core.ErrDeadlineExceeded) {
			// Still report the partial result; the residual line tells the
			// user how far the run got.
			fmt.Fprintf(os.Stderr, "dtmsolve: %v\n", err)
			err = nil
		}
		if err != nil {
			return nil, "", err
		}
		return res.X, fmt.Sprintf("converged=%v after %.2f s of real asynchronous execution, %d local solves, %d messages%s",
			res.Converged, res.FinalTime, res.Solves, res.Messages, faultSummary(res.Faults)), nil
	case "direct":
		// One factor-once/solve-many factorisation of the whole system through
		// the local-solver registry — the way to exercise a backend (or the
		// auto policy's fallback chain) on a workload end to end. The symmetric
		// backends read only the lower triangle, so an unsymmetric matrix (a
		// general MatrixMarket file, say) would be silently mis-factorised by
		// everything except dense-lu — refuse it up front.
		if o.localSolver != factor.DenseLU && !sys.A.IsSymmetric(1e-12) {
			return nil, "", fmt.Errorf("method direct needs a symmetric matrix for backend %q (only dense-lu handles unsymmetric input)", o.localSolver)
		}
		s, err := factor.New(o.localSolver, sys.A)
		if err != nil {
			return nil, "", err
		}
		var x sparse.Vec
		var batchNote string
		if o.nrhs > 1 {
			// The loaded (or default) right-hand side rides first; the extras
			// are generated. All of them sweep through the factor as one
			// batched panel — the factor-once/solve-many service shape.
			B := make([]sparse.Vec, o.nrhs)
			X := make([]sparse.Vec, o.nrhs)
			B[0] = sys.B
			for r := 1; r < o.nrhs; r++ {
				B[r] = sparse.RandomVec(sys.Dim(), o.seed+int64(r))
			}
			for r := range X {
				X[r] = sparse.NewVec(sys.Dim())
			}
			t0 := time.Now()
			factor.SolveBatch(s, X, B)
			dt := time.Since(t0)
			worst := 0.0
			for r := range X {
				if rel := sys.A.Residual(X[r], B[r]).Norm2() / B[r].Norm2(); rel > worst {
					worst = rel
				}
			}
			batchNote = fmt.Sprintf(", %d right-hand sides as one panel in %v (%.0f solves/s, worst relative residual %.3g)",
				o.nrhs, dt.Round(time.Microsecond), float64(o.nrhs)/dt.Seconds(), worst)
			x = X[0]
		} else {
			x = factor.Solve(s, sys.B)
		}
		if o.factorCache {
			// A second factorisation of the same matrix inside this invocation
			// is served from the shared cache — the stats line at the end
			// shows the hit.
			t0 := time.Now()
			if _, err := factor.New(o.localSolver, sys.A); err != nil {
				return nil, "", err
			}
			batchNote += fmt.Sprintf(", refactor served from the cache in %v", time.Since(t0).Round(time.Microsecond))
		}
		summary := fmt.Sprintf("backend=%s", s.Backend())
		switch f := s.(type) {
		case *factor.Cholesky:
			summary += fmt.Sprintf(" (%s ordering, nnz(L)=%d)", f.Ordering(), f.NNZL())
		case *factor.LDLT:
			pos, neg, zero := f.Inertia()
			summary += fmt.Sprintf(" (%s ordering, nnz(L)=%d, inertia %d+/%d-/%d0)", f.Ordering(), f.NNZL(), pos, neg, zero)
		case *factor.Supernodal:
			pos, neg, zero := f.Inertia()
			tasks, workers := f.Parallelism()
			summary += fmt.Sprintf(" (%s mode, %s ordering, %d supernodes, nnz(L)=%d, inertia %d+/%d-/%d0, %d subtree tasks on %d workers)",
				f.Mode(), f.Ordering(), f.Supernodes(), f.NNZL(), pos, neg, zero, tasks, workers)
		}
		return x, summary + batchNote, nil
	case "cg":
		x, st, err := iterative.CG(sys.A, sys.B, iterative.Config{MaxIterations: o.maxIter, Tol: o.tol})
		return x, iterSummary(st), err
	case "pcg":
		m, err := iterative.NewJacobiPreconditioner(sys.A)
		if err != nil {
			return nil, "", err
		}
		x, st, err := iterative.PCG(sys.A, sys.B, m, iterative.Config{MaxIterations: o.maxIter, Tol: o.tol})
		return x, iterSummary(st), err
	case "jacobi":
		x, st, err := iterative.Jacobi(sys.A, sys.B, 1, iterative.Config{MaxIterations: o.maxIter, Tol: o.tol})
		return x, iterSummary(st), err
	case "gauss-seidel":
		x, st, err := iterative.GaussSeidel(sys.A, sys.B, iterative.Config{MaxIterations: o.maxIter, Tol: o.tol})
		return x, iterSummary(st), err
	case "sor":
		x, st, err := iterative.SOR(sys.A, sys.B, 1.5, iterative.Config{MaxIterations: o.maxIter, Tol: o.tol})
		return x, iterSummary(st), err
	case "block-jacobi":
		assign := partition.Strips(sys.Dim(), o.parts)
		x, st, err := iterative.BlockJacobi(sys.A, sys.B, assign, iterative.Config{MaxIterations: o.maxIter, Tol: o.tol, LocalSolver: o.localSolver})
		return x, iterSummary(st), err
	case "async-jacobi":
		topo, err := machine(o)
		if err != nil {
			return nil, "", err
		}
		assign := partition.Strips(sys.Dim(), o.parts)
		res, err := iterative.AsyncBlockJacobi(sys.A, sys.B, assign, topo, iterative.AsyncOptions{MaxTime: o.maxTime, Tol: o.tol, LocalSolver: o.localSolver})
		if err != nil {
			return nil, "", err
		}
		return res.X, fmt.Sprintf("converged=%v at t=%.0f, %d local solves, %d messages",
			res.Converged, res.FinalTime, res.Solves, res.Messages), nil
	default:
		return nil, "", fmt.Errorf("unknown method %q", o.method)
	}
}

func iterSummary(st iterative.Stats) string {
	res := st.Residual
	if math.IsNaN(res) {
		res = 0
	}
	return fmt.Sprintf("converged=%v after %d iterations, relative residual %.3g", st.Converged, st.Iterations, res)
}
