// Command dtmd is the distributed DTM server. Each dtmd process is one
// member of a TCP fabric: worker members own a contiguous group of
// subdomains (factorised once, reused across solve sessions via the shared
// factor cache), and one coordinator member tears the problem, assigns the
// shards, drives the asynchronous exchange to quiescence and assembles the
// solution. The wire protocol is the DES engine's wavePacket shape plus the
// sequence-numbered recovery protocol, so dropped packets and broken
// connections cost time, never correctness.
//
// Modes:
//
//	worker (default):
//	    dtmd -self 1 -peers "0=host:9000,1=host:9001,2=host:9002"
//	  listens on its own peer address and serves solve sessions until
//	  shutdown. Each life registers with an incarnation number (-incarnation,
//	  or derived from the wall clock when omitted) so a restarted process
//	  rejoins strictly above its previous life and the zombie fences hold.
//
//	coordinate:
//	    dtmd -coordinate -self 0 -peers "..." -workers 1,2 \
//	         -rows 33 -cols 33 -px 2 -py 2 -tol 1e-9
//	  assigns the spec'd problem across the listed worker members, waits for
//	  quiescence, prints the result, and shuts the workers down (unless
//	  -keep-workers).
//
//	selftest:
//	    dtmd -selftest -nworkers 2 [-drop 0.05] [-crash] [-mm]
//	  spawns real dtmd worker processes on loopback, coordinates a quick
//	  problem against them, and exits 0 iff the distributed solution matches
//	  the in-process DES oracle to 1e-6. With -crash it SIGKILLs the last
//	  worker process mid-solve and additionally requires the coordinator to
//	  fail the dead worker's parts over to the survivors. With -mm it writes
//	  a MatrixMarket file, pins its content hash into an "mm:" source spec —
//	  the coordinator ships nothing; every worker process reads the same file
//	  and verifies the hash — and additionally requires a corrupted hash to
//	  be refused with sparse.ErrHashMismatch. This is the CI distributed
//	  smoke test.
//
// The problem is named either by the legacy grid flags (-rows/-cols/-seed,
// torn -px by -py) or by -source, a problem-source string from the sparse
// registry ("grid:rows=33,cols=33,seed=1", "spanner:n=100,k=6,seed=7,leak=0.05",
// "mm:/path/sys.mtx@<fnv64 hash>", …) torn into -parts subdomains with the
// general level-set + EVS pipeline. The machine is named by -topology
// ("uniform", "ring", "mesh4x4", "mesh8x8", "yao:n=4,k=6,seed=1").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/dist"
	"repro/internal/factor"
	"repro/internal/sparse"
	"repro/internal/transport"
)

type options struct {
	self        int
	peers       string
	coordinate  bool
	selftest    bool
	workers     string
	nworkers    int
	keepWorkers bool
	incarnation uint

	rows, cols    int
	seed          int64
	px, py        int
	source        string
	parts         int
	mmtest        bool
	topo          string
	delay         float64
	tol           float64
	localSolver   string
	sendThreshold float64
	watchdogMS    int
	pollMS        int
	heartbeat     time.Duration
	leaseBeats    int
	maxEpochs     int
	noFailover    bool
	crash         bool
	timeout       time.Duration
	drop          float64
	cacheMB       int64
	verbose       bool
	printX        bool
}

func main() {
	var o options
	flag.IntVar(&o.self, "self", 0, "this process's member id")
	flag.StringVar(&o.peers, "peers", "", `fabric address map, "id=host:port,id=host:port,..."`)
	flag.BoolVar(&o.coordinate, "coordinate", false, "run as coordinator instead of worker")
	flag.BoolVar(&o.selftest, "selftest", false, "spawn real worker processes on loopback and verify against the DES oracle")
	flag.StringVar(&o.workers, "workers", "", `coordinator: comma-separated worker member ids (default "all peers but self")`)
	flag.IntVar(&o.nworkers, "nworkers", 2, "selftest: number of worker processes to spawn")
	flag.BoolVar(&o.keepWorkers, "keep-workers", false, "coordinator: leave workers running after the solve")
	flag.UintVar(&o.incarnation, "incarnation", 0, "worker: incarnation number of this life (0 derives one from the wall clock; a restarted worker must use a strictly higher value than its previous life)")
	flag.IntVar(&o.rows, "rows", 17, "problem spec: grid rows")
	flag.IntVar(&o.cols, "cols", 17, "problem spec: grid cols")
	flag.Int64Var(&o.seed, "seed", 3, "problem spec: generator seed")
	flag.IntVar(&o.px, "px", 2, "problem spec: parts along x")
	flag.IntVar(&o.py, "py", 2, "problem spec: parts along y")
	flag.StringVar(&o.source, "source", "", `problem spec: source string ("grid:…", "saddle:…", "spanner:…", "mm:path@hash"; overrides -rows/-cols/-seed)`)
	flag.IntVar(&o.parts, "parts", 0, "problem spec: tear into this many parts with the general pipeline (0 keeps -px×-py)")
	flag.BoolVar(&o.mmtest, "mm", false, "selftest: run the MatrixMarket-by-hash leg (write a file, solve it distributed, require a corrupted hash to be refused)")
	flag.StringVar(&o.topo, "topo", "uniform", "problem spec: topology (uniform, ring, mesh4x4, mesh8x8, yao:…)")
	flag.StringVar(&o.topo, "topology", "uniform", "alias for -topo")
	flag.Float64Var(&o.delay, "delay", 10, "problem spec: uniform/ring link delay")
	flag.Float64Var(&o.tol, "tol", 1e-9, "quiescence tolerance")
	flag.StringVar(&o.localSolver, "local-solver", "", "factor backend for the local solves (empty for default)")
	flag.Float64Var(&o.sendThreshold, "send-threshold", 0, "wave re-announcement suppression threshold (default tol/100)")
	flag.IntVar(&o.watchdogMS, "watchdog-ms", 50, "worker retransmission sweep interval")
	flag.IntVar(&o.pollMS, "poll-ms", 10, "coordinator status poll interval")
	flag.DurationVar(&o.heartbeat, "heartbeat", 25*time.Millisecond, "worker heartbeat (and snapshot) interval")
	flag.IntVar(&o.leaseBeats, "lease", 6, "coordinator: worker lease in heartbeat intervals")
	flag.IntVar(&o.maxEpochs, "max-epochs", 8, "coordinator: give up after this many ownership epochs")
	flag.BoolVar(&o.noFailover, "no-failover", false, "coordinator: surface a lost worker as an error instead of reassigning")
	flag.BoolVar(&o.crash, "crash", false, "selftest: SIGKILL the last worker mid-solve and require failover")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Minute, "coordinator/selftest deadline")
	flag.Float64Var(&o.drop, "drop", 0, "inject this wave-drop probability on this member's sends (testing)")
	flag.Int64Var(&o.cacheMB, "cache-mb", 64, "shared factor cache budget in MiB (0 disables)")
	flag.BoolVar(&o.verbose, "v", false, "log progress")
	flag.BoolVar(&o.printX, "print-x", false, "coordinator: print the assembled solution vector")
	flag.Parse()

	if err := run(&o); err != nil {
		fmt.Fprintln(os.Stderr, "dtmd:", err)
		os.Exit(1)
	}
}

func run(o *options) error {
	if o.selftest {
		return selftest(o)
	}
	addrs, err := parsePeers(o.peers)
	if err != nil {
		return err
	}
	if _, ok := addrs[o.self]; !ok {
		return fmt.Errorf("-peers does not list -self %d", o.self)
	}
	if o.cacheMB > 0 {
		factor.EnableSharedCache(o.cacheMB << 20)
		defer factor.DisableSharedCache()
	}
	tr, err := transport.NewTCP(o.self, addrs)
	if err != nil {
		return err
	}
	defer tr.Close()
	if o.coordinate {
		return coordinate(o, tr, addrs)
	}
	return worker(o, tr)
}

// worker serves solve sessions until shutdown, SIGINT or SIGTERM.
func worker(o *options, tr transport.Transport) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	wtr := tr
	if o.drop > 0 {
		spec := &chaos.Spec{Drop: o.drop, Seed: int64(1000 + o.self)}
		if err := spec.Validate(); err != nil {
			return err
		}
		wtr = transport.WithFaults(tr, spec, len(tr.Peers())+1, 100*time.Microsecond)
		defer wtr.Close()
	}
	w := dist.NewWorker(wtr)
	w.Incarnation = workerIncarnation(o.incarnation)
	if o.verbose {
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dtmd: "+format+"\n", args...)
		}
	}
	fmt.Printf("dtmd: worker %d (inc %d) listening\n", tr.Self(), w.Incarnation)
	return w.Run(ctx)
}

// workerIncarnation resolves the incarnation this worker life registers
// with. The failover protocol requires a restarted dtmd process to carry a
// strictly higher incarnation than its previous life, or its beats are
// fenced as zombie traffic. An explicit -incarnation wins (deployments with
// a supervisor-managed restart counter); otherwise one is derived from the
// wall clock at second granularity, which is monotonic across real process
// restarts. Two restarts within the same second collide and degrade to the
// same-incarnation false-expiry rejoin path — slower, never incorrect.
func workerIncarnation(explicit uint) uint32 {
	if explicit > 0 {
		return uint32(explicit)
	}
	const epoch2025 = 1735689600 // 2025-01-01T00:00:00Z
	s := time.Now().Unix() - epoch2025
	if s < 1 {
		s = 1 // a badly set clock still yields a valid (if static) incarnation
	}
	return uint32(s)
}

// coordinate runs one distributed solve and reports it.
func coordinate(o *options, tr transport.Transport, addrs map[int]string) error {
	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	workers, err := workerIDs(o, addrs)
	if err != nil {
		return err
	}
	spec := buildSpec(o)
	start := time.Now()
	res, err := dist.Coordinate(ctx, tr, dist.CoordConfig{
		Spec: spec, Workers: workers, Tol: o.tol,
		LocalSolver: o.localSolver, SendThreshold: o.sendThreshold,
		WatchdogMS:      o.watchdogMS,
		PollInterval:    time.Duration(o.pollMS) * time.Millisecond,
		HeartbeatMS:     int(o.heartbeat / time.Millisecond),
		LeaseBeats:      o.leaseBeats,
		MaxEpochs:       o.maxEpochs,
		DisableFailover: o.noFailover,
	})
	if err != nil {
		return err
	}
	fmt.Printf("converged        %v\n", res.Converged)
	fmt.Printf("wall time        %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("workers          %d (parts %d)\n", len(workers), spec.Parts())
	fmt.Printf("solves           %d\n", res.Solves)
	fmt.Printf("messages         %d\n", res.Messages)
	fmt.Printf("polls            %d\n", res.Polls)
	fmt.Printf("max last change  %.3e\n", res.MaxLastChange)
	fmt.Printf("twin gap         %.3e\n", res.TwinGap)
	if res.Failovers > 0 || res.Rejoins > 0 || res.Fenced > 0 {
		fmt.Printf("failovers        %d (rejoins %d, epoch %d, fenced %d)\n",
			res.Failovers, res.Rejoins, res.Epoch, res.Fenced)
	}
	if o.printX {
		for i, v := range res.X {
			fmt.Printf("x[%d] = %.12g\n", i, v)
		}
	}
	if !o.keepWorkers {
		shutdownWorkers(tr, workers)
	}
	if !res.Converged {
		return fmt.Errorf("did not converge within %v", o.timeout)
	}
	return nil
}

// buildSpec assembles the problem spec from the flags: the versioned source
// form when -source is given, the legacy grid form otherwise.
func buildSpec(o *options) dist.ProblemSpec {
	spec := dist.ProblemSpec{
		Rows: o.rows, Cols: o.cols, Seed: o.seed,
		PartsX: o.px, PartsY: o.py, NParts: o.parts,
		Topology: o.topo, Delay: o.delay,
	}
	if o.source != "" {
		spec.V = 2
		spec.Source = o.source
		spec.Rows, spec.Cols, spec.Seed = 0, 0, 0
	}
	return spec
}

func shutdownWorkers(tr transport.Transport, workers []int) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, w := range workers {
		_ = dist.Shutdown(ctx, tr, w)
	}
}

// selftest spawns real dtmd worker processes over loopback TCP, coordinates
// a quick problem against them (optionally with injected wave drop), and
// verifies the assembled solution against the in-process DES oracle. With
// -crash it SIGKILLs the last worker process as soon as the solve is in
// flight and additionally requires at least one failover epoch: the proof
// that a real process death costs time, never correctness.
func selftest(o *options) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	n := o.nworkers
	if n < 1 {
		return fmt.Errorf("-nworkers must be >= 1")
	}
	if o.crash && n < 2 {
		return fmt.Errorf("-crash needs -nworkers >= 2 (someone must survive)")
	}
	// Reserve loopback ports: bind, record, release. SO_REUSEADDR makes the
	// immediate rebind by the child reliable on loopback.
	addrs := make(map[int]string, n+1)
	for id := 0; id <= n; id++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[id] = ln.Addr().String()
		ln.Close()
	}
	peers := formatPeers(addrs)

	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	var procs []*exec.Cmd
	defer func() {
		for _, c := range procs {
			if c.Process != nil {
				_ = c.Process.Kill()
			}
			_ = c.Wait()
		}
	}()
	for id := 1; id <= n; id++ {
		args := []string{
			"-self", strconv.Itoa(id), "-peers", peers,
			"-cache-mb", strconv.FormatInt(o.cacheMB, 10),
		}
		if o.drop > 0 {
			args = append(args, "-drop", strconv.FormatFloat(o.drop, 'g', -1, 64))
		}
		if o.verbose {
			args = append(args, "-v")
		}
		cmd := exec.CommandContext(ctx, self, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning worker %d: %w", id, err)
		}
		procs = append(procs, cmd)
	}

	tr, err := transport.NewTCP(0, addrs)
	if err != nil {
		return err
	}
	defer tr.Close()
	workers := make([]int, n)
	for i := range workers {
		workers[i] = i + 1
	}
	spec := buildSpec(o)
	var mmPath string
	var mmHash uint64
	if o.mmtest {
		// MatrixMarket-by-hash leg: write the system to a real file, pin its
		// content hash into the spec, and let every worker process load and
		// verify it independently — the coordinator ships no matrix data.
		mmPath, mmHash, err = writeSelftestMatrix(o)
		if err != nil {
			return err
		}
		defer os.Remove(mmPath)
		spec = dist.ProblemSpec{
			V: 2, Source: sparse.MMSource{Path: mmPath, Hash: mmHash}.String(),
			NParts: o.parts, Topology: o.topo, Delay: o.delay,
		}
		if spec.NParts == 0 {
			spec.NParts = 2 * n // default tearing: two parts per worker
		}
	}
	cfg := dist.CoordConfig{
		Spec: spec, Workers: workers, Tol: o.tol,
		LocalSolver: o.localSolver, SendThreshold: o.sendThreshold,
		WatchdogMS:   o.watchdogMS,
		PollInterval: time.Duration(o.pollMS) * time.Millisecond,
		HeartbeatMS:  int(o.heartbeat / time.Millisecond),
		LeaseBeats:   o.leaseBeats,
		MaxEpochs:    o.maxEpochs,
	}
	if o.crash {
		// SIGKILL the last worker once the solve is in flight (after the
		// first status poll round has gone out) — no shutdown handshake, no
		// flushed buffers, exactly what a machine death looks like.
		victim := procs[len(procs)-1]
		var killed bool
		cfg.OnPoll = func(poll int) {
			if poll >= 1 && !killed {
				killed = true
				fmt.Fprintf(os.Stderr, "dtmd: selftest killing worker %d (pid %d)\n", n, victim.Process.Pid)
				_ = victim.Process.Signal(syscall.SIGKILL)
			}
		}
	}
	res, err := dist.Coordinate(ctx, tr, cfg)
	if err != nil {
		return err
	}
	shutdownWorkers(tr, workers)
	if !res.Converged {
		return fmt.Errorf("selftest: distributed run did not converge (polls=%d maxChange=%g gap=%g)",
			res.Polls, res.MaxLastChange, res.TwinGap)
	}
	if o.crash && res.Failovers < 1 {
		return fmt.Errorf("selftest: -crash run finished without a failover (epoch=%d)", res.Epoch)
	}
	oracle, err := spec.Oracle(o.tol, o.localSolver)
	if err != nil {
		return err
	}
	d := 0.0
	for i := range res.X {
		d = math.Max(d, math.Abs(res.X[i]-oracle.X[i]))
	}
	mode := "clean"
	if o.drop > 0 {
		mode = fmt.Sprintf("drop=%g", o.drop)
	}
	if o.crash {
		mode += "+crash"
	}
	if o.mmtest {
		mode += "+mm"
		// The other half of the hash protocol: a spec whose pinned hash does
		// not match the file content must be refused with the typed error
		// before any work is assigned.
		bad := spec
		bad.Source = sparse.MMSource{Path: mmPath, Hash: mmHash ^ 1}.String()
		_, cerr := dist.Coordinate(ctx, tr, dist.CoordConfig{
			Spec: bad, Workers: workers, Tol: o.tol,
		})
		if !errors.Is(cerr, sparse.ErrHashMismatch) {
			return fmt.Errorf("selftest FAIL (mm): corrupted hash not refused with ErrHashMismatch (got %v)", cerr)
		}
	}
	if d > 1e-6 {
		return fmt.Errorf("selftest FAIL (%s): distributed X differs from DES oracle by %g (> 1e-6)", mode, d)
	}
	fmt.Printf("selftest PASS (%s): %d worker processes, %d parts, max |x_dist - x_des| = %.3e, %d solves, %d messages, %d failovers (epoch %d)\n",
		mode, n, spec.Parts(), d, res.Solves, res.Messages, res.Failovers, res.Epoch)
	return nil
}

// writeSelftestMatrix writes a deterministic SPD system to a temp
// MatrixMarket file and returns its path and FNV-1a 64 content hash — the
// two halves of an "mm:" source spec.
func writeSelftestMatrix(o *options) (string, uint64, error) {
	sys := sparse.RandomGridSPD(o.rows, o.cols, o.seed)
	f, err := os.CreateTemp("", "dtmd-selftest-*.mtx")
	if err != nil {
		return "", 0, err
	}
	path := f.Name()
	if err := sparse.WriteMatrixSym(f, sys.A); err != nil {
		f.Close()
		os.Remove(path)
		return "", 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return "", 0, err
	}
	hash, err := sparse.HashFileFNV64(path)
	if err != nil {
		os.Remove(path)
		return "", 0, err
	}
	return path, hash, nil
}

func parsePeers(s string) (map[int]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf(`-peers is required (e.g. "0=host:9000,1=host:9001")`)
	}
	addrs := make(map[int]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -peers entry %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad member id in -peers entry %q", part)
		}
		addrs[id] = kv[1]
	}
	return addrs, nil
}

func formatPeers(addrs map[int]string) string {
	ids := make([]int, 0, len(addrs))
	for id := range addrs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("%d=%s", id, addrs[id]))
	}
	return strings.Join(parts, ",")
}

func workerIDs(o *options, addrs map[int]string) ([]int, error) {
	if strings.TrimSpace(o.workers) == "" {
		var ws []int
		for id := range addrs {
			if id != o.self {
				ws = append(ws, id)
			}
		}
		sort.Ints(ws)
		if len(ws) == 0 {
			return nil, fmt.Errorf("no workers: -peers lists only -self")
		}
		return ws, nil
	}
	var ws []int
	for _, part := range strings.Split(o.workers, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		ws = append(ws, id)
	}
	return ws, nil
}
