// Command dtmbench regenerates the tables and figures of the paper's
// evaluation (and the extra comparisons and ablations listed in DESIGN.md) and
// prints them as plain-text tables.
//
// Usage:
//
//	dtmbench -list
//	dtmbench -exp fig8
//	dtmbench -exp fig12 -quick
//	dtmbench -all -quick
//	dtmbench -benchjson BENCH_dtm.json -quick
//	dtmbench -exp scale-sparse -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The -cpuprofile and -memprofile flags capture pprof profiles of whatever
// the invocation runs — the way to find factorisation hot spots without
// hand-building test binaries (`go tool pprof cpu.pprof`).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/benchjson"
	"repro/internal/experiments"
	"repro/internal/factor"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment to run (see -list)")
		all         = flag.Bool("all", false, "run every registered experiment")
		quick       = flag.Bool("quick", false, "use reduced problem sizes")
		list        = flag.Bool("list", false, "list the available experiments")
		benchjson   = flag.String("benchjson", "", "measure the hot-path experiments and write machine-readable results to this JSON file")
		localSolver = flag.String("localsolver", "", fmt.Sprintf("local-factorisation backend every experiment's subdomain/block solves use: one of %v (default %q)", factor.Backends(), factor.Default()))
		ordering    = flag.String("ordering", "", "fill-reducing ordering every sparse factorisation uses: natural, rcm, amd, nd or auto (default: auto)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile of the run to this file")
		timeout     = flag.Duration("timeout", 0, "wall-clock deadline for the whole invocation (0 = none)")
	)
	flag.Parse()

	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "dtmbench: %v deadline exceeded\n", *timeout)
			os.Exit(1)
		})
	}

	if *localSolver != "" {
		// The experiments construct their own option structs; steering the
		// factor package default reaches every one of them at once.
		if err := factor.SetDefault(*localSolver); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
			os.Exit(2)
		}
	}
	if *ordering != "" {
		// Same trick for the fill-reducing ordering: the registered sparse
		// backends all consult the package default.
		ord, err := factor.ParseOrdering(*ordering)
		if err == nil {
			err = factor.SetDefaultOrdering(ord)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
			os.Exit(2)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: starting CPU profile: %v\n", err)
			os.Exit(2)
		}
	}

	code := dispatch(*benchjson, *exp, *quick, *all, *list)

	// Flush the profiles before exiting — the error paths above run before
	// any profiling starts, but experiment failures must still produce a
	// usable profile of the work done so far.
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if f, err := os.Create(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
		} else {
			runtime.GC() // materialise the final heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dtmbench: writing heap profile: %v\n", err)
			}
			f.Close()
		}
	}
	if code != 0 {
		os.Exit(code)
	}
}

// dispatch runs the selected mode and returns the process exit code.
func dispatch(benchPath, exp string, quick, all, list bool) int {
	registry := experiments.Registry()
	switch {
	case benchPath != "":
		if err := writeBenchJSON(registry, benchPath, quick); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
			return 1
		}
	case list:
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Printf("  %s\n", name)
		}
	case all:
		for _, name := range experiments.Names() {
			if err := runOne(registry, name, quick); err != nil {
				fmt.Fprintf(os.Stderr, "dtmbench: %s: %v\n", name, err)
				return 1
			}
		}
	case exp != "":
		if err := runOne(registry, exp, quick); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
			return 1
		}
	default:
		flag.Usage()
		return 2
	}
	return 0
}

func runOne(registry map[string]experiments.Runner, name string, quick bool) error {
	runner, ok := registry[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", name)
	}
	fmt.Printf("==== %s ====\n", name)
	start := time.Now()
	if err := runner(os.Stdout, quick); err != nil {
		return err
	}
	fmt.Printf("---- %s done in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

// benchExperiments are the hot-path figures whose cost is tracked over time.
var benchExperiments = []string{"fig12", "fig14", "compare-async-jacobi", "scale-sparse", "fault-sweep", "solve-throughput", "compare-distributed", "failover-sweep", "spanner-fabric"}

// writeBenchJSON measures each hot-path experiment and writes the shared
// benchjson schema the cmd/benchdiff regression gate consumes.
func writeBenchJSON(registry map[string]experiments.Runner, path string, quick bool) error {
	out := benchjson.File{Generated: "dtmbench -benchjson", GoVersion: runtime.Version()}
	for _, name := range benchExperiments {
		runner, ok := registry[name]
		if !ok {
			return fmt.Errorf("experiment %q is not registered", name)
		}
		const iters = 2
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := runner(io.Discard, quick); err != nil {
				return fmt.Errorf("experiment %q: %w", name, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		out.Results = append(out.Results, benchjson.Record{
			Experiment: name,
			Quick:      quick,
			Iterations: iters,
			NsPerOp:    float64(elapsed.Nanoseconds()) / iters,
			BytesPerOp: float64(after.TotalAlloc-before.TotalAlloc) / iters,
			AllocsOp:   float64(after.Mallocs-before.Mallocs) / iters,
		})
		fmt.Printf("%-22s %12.0f ns/op %12.0f B/op %10.0f allocs/op\n",
			name, out.Results[len(out.Results)-1].NsPerOp,
			out.Results[len(out.Results)-1].BytesPerOp,
			out.Results[len(out.Results)-1].AllocsOp)
	}
	if err := out.Write(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
