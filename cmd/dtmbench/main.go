// Command dtmbench regenerates the tables and figures of the paper's
// evaluation (and the extra comparisons and ablations listed in DESIGN.md) and
// prints them as plain-text tables.
//
// Usage:
//
//	dtmbench -list
//	dtmbench -exp fig8
//	dtmbench -exp fig12 -quick
//	dtmbench -all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment to run (see -list)")
		all   = flag.Bool("all", false, "run every registered experiment")
		quick = flag.Bool("quick", false, "use reduced problem sizes")
		list  = flag.Bool("list", false, "list the available experiments")
	)
	flag.Parse()

	registry := experiments.Registry()
	switch {
	case *list:
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Printf("  %s\n", name)
		}
		return
	case *all:
		for _, name := range experiments.Names() {
			if err := runOne(registry, name, *quick); err != nil {
				fmt.Fprintf(os.Stderr, "dtmbench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	case *exp != "":
		if err := runOne(registry, *exp, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
			os.Exit(1)
		}
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(registry map[string]experiments.Runner, name string, quick bool) error {
	runner, ok := registry[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", name)
	}
	fmt.Printf("==== %s ====\n", name)
	start := time.Now()
	if err := runner(os.Stdout, quick); err != nil {
		return err
	}
	fmt.Printf("---- %s done in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}
