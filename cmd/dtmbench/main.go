// Command dtmbench regenerates the tables and figures of the paper's
// evaluation (and the extra comparisons and ablations listed in DESIGN.md) and
// prints them as plain-text tables.
//
// Usage:
//
//	dtmbench -list
//	dtmbench -exp fig8
//	dtmbench -exp fig12 -quick
//	dtmbench -all -quick
//	dtmbench -benchjson BENCH_dtm.json -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/benchjson"
	"repro/internal/experiments"
	"repro/internal/factor"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment to run (see -list)")
		all         = flag.Bool("all", false, "run every registered experiment")
		quick       = flag.Bool("quick", false, "use reduced problem sizes")
		list        = flag.Bool("list", false, "list the available experiments")
		benchjson   = flag.String("benchjson", "", "measure the hot-path experiments and write machine-readable results to this JSON file")
		localSolver = flag.String("localsolver", "", fmt.Sprintf("local-factorisation backend every experiment's subdomain/block solves use: one of %v (default %q)", factor.Backends(), factor.Default()))
	)
	flag.Parse()

	if *localSolver != "" {
		// The experiments construct their own option structs; steering the
		// factor package default reaches every one of them at once.
		if err := factor.SetDefault(*localSolver); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
			os.Exit(2)
		}
	}

	registry := experiments.Registry()
	switch {
	case *benchjson != "":
		if err := writeBenchJSON(registry, *benchjson, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
			os.Exit(1)
		}
		return
	case *list:
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Printf("  %s\n", name)
		}
		return
	case *all:
		for _, name := range experiments.Names() {
			if err := runOne(registry, name, *quick); err != nil {
				fmt.Fprintf(os.Stderr, "dtmbench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	case *exp != "":
		if err := runOne(registry, *exp, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "dtmbench: %v\n", err)
			os.Exit(1)
		}
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(registry map[string]experiments.Runner, name string, quick bool) error {
	runner, ok := registry[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", name)
	}
	fmt.Printf("==== %s ====\n", name)
	start := time.Now()
	if err := runner(os.Stdout, quick); err != nil {
		return err
	}
	fmt.Printf("---- %s done in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

// benchExperiments are the hot-path figures whose cost is tracked over time.
var benchExperiments = []string{"fig12", "fig14", "compare-async-jacobi", "scale-sparse"}

// writeBenchJSON measures each hot-path experiment and writes the shared
// benchjson schema the cmd/benchdiff regression gate consumes.
func writeBenchJSON(registry map[string]experiments.Runner, path string, quick bool) error {
	out := benchjson.File{Generated: "dtmbench -benchjson", GoVersion: runtime.Version()}
	for _, name := range benchExperiments {
		runner, ok := registry[name]
		if !ok {
			return fmt.Errorf("experiment %q is not registered", name)
		}
		const iters = 2
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := runner(io.Discard, quick); err != nil {
				return fmt.Errorf("experiment %q: %w", name, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		out.Results = append(out.Results, benchjson.Record{
			Experiment: name,
			Quick:      quick,
			Iterations: iters,
			NsPerOp:    float64(elapsed.Nanoseconds()) / iters,
			BytesPerOp: float64(after.TotalAlloc-before.TotalAlloc) / iters,
			AllocsOp:   float64(after.Mallocs-before.Mallocs) / iters,
		})
		fmt.Printf("%-22s %12.0f ns/op %12.0f B/op %10.0f allocs/op\n",
			name, out.Results[len(out.Results)-1].NsPerOp,
			out.Results[len(out.Results)-1].BytesPerOp,
			out.Results[len(out.Results)-1].AllocsOp)
	}
	if err := out.Write(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
