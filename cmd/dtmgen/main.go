// Command dtmgen generates sparse SPD test systems (the workloads of the
// paper's Section 7 and a few extras) and writes them to disk in MatrixMarket
// format, understood by internal/sparse, cmd/dtmsolve and external tools.
// After writing it prints the file's "mm:<path>@<fnv64 hash>" source spec,
// ready to paste into dtmsolve -source or a dtmd coordinator: every worker
// that loads the file verifies the content hash before tearing.
//
// Usage examples:
//
//	dtmgen -gen poisson2d -nx 33 -ny 33 -matrix A.mtx -rhs b.vec
//	dtmgen -gen random-grid -nx 65 -ny 65 -seed 4225 -matrix A4225.mtx -rhs b4225.vec
//	dtmgen -source "spanner:n=289,k=6,seed=1,leak=0.05" -matrix spanner.mtx -rhs spanner.vec
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sparse"
)

func main() {
	var (
		gen    = flag.String("gen", "poisson2d", "generator: poisson2d, poisson3d, random, random-grid, resistor, tridiag")
		source = flag.String("source", "", fmt.Sprintf("problem-source string (%v); overrides -gen", sparse.RegisteredSources()))
		nx     = flag.Int("nx", 33, "grid width")
		ny     = flag.Int("ny", 33, "grid height")
		nz     = flag.Int("nz", 9, "grid depth (poisson3d)")
		n      = flag.Int("n", 500, "dimension for non-grid generators")
		seed   = flag.Int64("seed", 1, "random seed")
		matrix = flag.String("matrix", "A.mtx", "output matrix file (MatrixMarket coordinate format)")
		rhs    = flag.String("rhs", "b.vec", "output right-hand-side file (MatrixMarket array format)")
		sym    = flag.Bool("sym", false, "write the matrix in MatrixMarket symmetric form (stores one triangle, halves the file)")
	)
	flag.Parse()

	var sys sparse.System
	if *source != "" {
		src, err := sparse.ParseSource(*source)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtmgen: %v\n", err)
			os.Exit(2)
		}
		var berr error
		sys, _, berr = src.Build()
		if berr != nil {
			fmt.Fprintf(os.Stderr, "dtmgen: %v\n", berr)
			os.Exit(1)
		}
	} else {
		switch *gen {
		case "poisson2d":
			sys = sparse.Poisson2D(*nx, *ny, 0.05)
		case "poisson3d":
			sys = sparse.Poisson3D(*nx, *ny, *nz, 0.05)
		case "random":
			sys = sparse.RandomSPD(*n, 0.02, *seed)
		case "random-grid":
			sys = sparse.RandomGridSPD(*nx, *ny, *seed)
		case "resistor":
			sys = sparse.ResistorNetwork(*nx, *ny, *seed)
		case "tridiag":
			sys = sparse.Tridiagonal(*n, 2.1, -1)
		default:
			fmt.Fprintf(os.Stderr, "dtmgen: unknown generator %q\n", *gen)
			os.Exit(2)
		}
	}

	if err := writeSystem(sys, *matrix, *rhs, *sym); err != nil {
		fmt.Fprintf(os.Stderr, "dtmgen: %v\n", err)
		os.Exit(1)
	}
	hash, err := sparse.HashFileFNV64(*matrix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtmgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (n=%d, nnz=%d) and %s\n", *matrix, sys.Dim(), sys.A.NNZ(), *rhs)
	fmt.Printf("source spec: %s\n", sparse.MMSource{Path: *matrix, Hash: hash}.String())
}

func writeSystem(sys sparse.System, matrixPath, rhsPath string, symmetric bool) error {
	mf, err := os.Create(matrixPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	write := sparse.WriteMatrix
	if symmetric {
		write = sparse.WriteMatrixSym
	}
	if err := write(mf, sys.A); err != nil {
		return err
	}
	rf, err := os.Create(rhsPath)
	if err != nil {
		return err
	}
	defer rf.Close()
	return sparse.WriteVec(rf, sys.B)
}
