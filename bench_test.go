// Benchmarks regenerating every figure of the paper's evaluation (Figs. 8, 9,
// 11, 12, 13, 14 — there are no numbered tables besides the algorithm listing
// of Table 1, which internal/core implements and tests directly) plus the
// comparison and ablation experiments of DESIGN.md. Each benchmark measures
// the full cost of reproducing one figure: building the workload, partitioning
// it, running the solver(s), and collecting the series the paper plots.
//
// Run them with:
//
//	go test -bench=. -benchmem            # reduced sizes, minutes
//	go test -bench=. -benchmem -full      # the paper's full problem sizes
package repro

import (
	"flag"
	"io"
	"testing"

	"repro/internal/experiments"
)

// full switches the benchmarks from the reduced problem sizes (which keep the
// whole suite in the minutes range) to the paper's full configurations.
var full = flag.Bool("full", false, "benchmark the paper's full problem sizes")

func benchmarkExperiment(b *testing.B, name string) {
	b.Helper()
	runner, ok := experiments.Registry()[name]
	if !ok {
		b.Fatalf("experiment %q is not registered", name)
	}
	quick := !*full
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner(io.Discard, quick); err != nil {
			b.Fatalf("experiment %q: %v", name, err)
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: DTM on the paper's 4-unknown example, two
// processors with 6.7 µs / 2.9 µs asymmetric delays, Z₂ = 0.2 and Z₃ = 0.1.
func BenchmarkFig8(b *testing.B) { benchmarkExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig. 9: the RMS error at t = 100 µs as a function
// of the characteristic impedance of the DTLPs.
func BenchmarkFig9(b *testing.B) { benchmarkExperiment(b, "fig9") }

// BenchmarkFig11 regenerates Fig. 11: the 16-processor 4×4 mesh with
// heterogeneous, direction-dependent delays and its delay statistics.
func BenchmarkFig11(b *testing.B) { benchmarkExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12: DTM convergence curves on the
// 16-processor heterogeneous mesh for the randomly generated grid-sparsity SPD
// systems with 289 and 1089 unknowns.
func BenchmarkFig12(b *testing.B) { benchmarkExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13: the 64-processor 8×8 mesh whose directed
// link delays are uniformly distributed in [10 ms, 100 ms].
func BenchmarkFig13(b *testing.B) { benchmarkExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Fig. 14: DTM convergence curves on 64 processors
// for the systems with 1089 and 4225 unknowns.
func BenchmarkFig14(b *testing.B) { benchmarkExperiment(b, "fig14") }

// BenchmarkCompareDTMVTM regenerates the DTM-versus-VTM comparison the paper's
// conclusions discuss (extra experiment E1 in DESIGN.md).
func BenchmarkCompareDTMVTM(b *testing.B) { benchmarkExperiment(b, "compare-vtm") }

// BenchmarkCompareAsyncJacobi regenerates the DTM-versus-asynchronous-
// block-Jacobi comparison behind the introduction's claim (E2 in DESIGN.md).
func BenchmarkCompareAsyncJacobi(b *testing.B) { benchmarkExperiment(b, "compare-async-jacobi") }

// BenchmarkAblationImpedance regenerates the impedance-strategy ablation (E3).
func BenchmarkAblationImpedance(b *testing.B) { benchmarkExperiment(b, "ablation-impedance") }

// BenchmarkAblationDelays regenerates the delay-heterogeneity ablation (E4).
func BenchmarkAblationDelays(b *testing.B) { benchmarkExperiment(b, "ablation-delays") }

// BenchmarkAblationMixed regenerates the sync/async-mixing (GALS) ablation (E5).
func BenchmarkAblationMixed(b *testing.B) { benchmarkExperiment(b, "ablation-mixed") }

// BenchmarkE6ScaleSparse regenerates the scale-sparse experiment (E6): the
// whole-system sparse Cholesky at grid sizes where the dense backends fail to
// allocate, the non-SPD leg (a quasi-definite saddle system past the dense
// cap, factorised through the auto policy's sparse-LDLT fallback), plus a DTM
// run with sparse local factorisations.
func BenchmarkE6ScaleSparse(b *testing.B) { benchmarkExperiment(b, "scale-sparse") }

// BenchmarkE7FaultSweep regenerates the fault-injection sweep (E7): the same
// DTM workload solved fault-free and under message drop/duplication/jitter, a
// hard link-down window, and a crash-restart from snapshot, measuring the
// convergence-time and message overhead of recovery.
func BenchmarkE7FaultSweep(b *testing.B) { benchmarkExperiment(b, "fault-sweep") }

// BenchmarkE8SolveThroughput regenerates the solve-throughput experiment
// (E8): batched multi-RHS panel solves versus scalar sweeps at k ∈ {1, 8, 64},
// the level-scheduled parallel triangular solve versus the sequential sweep,
// and concurrent clients solving through the shared factor cache.
func BenchmarkE8SolveThroughput(b *testing.B) { benchmarkExperiment(b, "solve-throughput") }

// BenchmarkE9CompareDistributed regenerates the distributed-agreement
// experiment (E9): the same torn problem solved by the DES oracle and by
// distributed workers over the in-process channel fabric, real TCP loopback
// connections, and a 5%-drop faulted channel, asserting max-norm agreement
// within 1e-6 on every leg.
func BenchmarkE9CompareDistributed(b *testing.B) { benchmarkExperiment(b, "compare-distributed") }

// BenchmarkE10FailoverSweep regenerates the worker-failover experiment (E10):
// a mid-solve worker kill across heartbeat cadences (and under 5% wave drop),
// measuring the wall/message/fencing cost of the reassign epoch, with every
// leg checked against the DES oracle.
func BenchmarkE10FailoverSweep(b *testing.B) { benchmarkExperiment(b, "failover-sweep") }

// BenchmarkE11SpannerFabric regenerates the spanner-fabric experiment (E11):
// DTM on grid and Yao-spanner-Laplacian problems torn by the general
// level-set + EVS pipeline, solved on the paper's heterogeneous mesh and on a
// Yao geometric fabric with distance-proportional delays, every leg checked
// against the reference solution to 1e-6 and the per-problem fabric speedup
// and message counts reported.
func BenchmarkE11SpannerFabric(b *testing.B) { benchmarkExperiment(b, "spanner-fabric") }

// TestAllExperimentsQuick runs every registered experiment at its reduced size
// so the whole evaluation pipeline is exercised by `go test` as well.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment pipeline test skipped in -short mode")
	}
	for _, name := range experiments.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			runner := experiments.Registry()[name]
			if runner == nil {
				t.Fatalf("experiment %q is not registered", name)
			}
			if err := runner(io.Discard, true); err != nil {
				t.Fatalf("experiment %q failed: %v", name, err)
			}
		})
	}
}
